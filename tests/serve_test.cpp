// Serve-mode tests: the identity contract (SquidService answers — cached,
// batched, parallel, before and after evictions — are bit-identical to cold
// serial Squid::Discover), LRU cache mechanics, and concurrent-session
// stress. The suite carries the ctest label `serve` and runs under the
// -DSQUID_TSAN=ON CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

#include "bench/bench_util.h"
#include "core/squid.h"
#include "eval/experiment.h"
#include "eval/sampler.h"
#include "serve/bounded_queue.h"
#include "serve/context_cache.h"
#include "serve/repl.h"
#include "serve/squid_service.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using bench::BuildImdbBench;
using bench::ImdbBench;

/// One shared small-scale IMDb + αDB for the whole suite (expensive).
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new ImdbBench(BuildImdbBench(0.2));
    workload_ = new std::vector<std::vector<std::string>>(BuildWorkload());
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
    delete workload_;
    workload_ = nullptr;
  }

  /// Example sets drawn from several intents' ground truths (distinct seeds
  /// give distinct sets) plus the manifest costar pair.
  static std::vector<std::vector<std::string>> BuildWorkload() {
    std::vector<std::vector<std::string>> sets;
    const ImdbManifest& m = bench_->data.manifest;
    sets.push_back({m.costar_a, m.costar_b});
    for (const char* id : {"IQ1", "IQ6", "IQ13", "IQ15"}) {
      auto query = FindQuery(bench_->queries, id);
      if (!query.ok()) continue;
      auto truth = GroundTruth(*bench_->data.db, *query.value());
      if (!truth.ok()) continue;
      for (uint64_t seed : {7u, 19u, 33u}) {
        Rng rng(seed);
        auto examples = SampleExamples(truth.value(), 5, &rng);
        if (examples.size() >= 2) sets.push_back(std::move(examples));
      }
    }
    return sets;
  }

  /// Key for comparing two AbducedQuery results bit for bit.
  static std::string Fingerprint(const Result<AbducedQuery>& r) {
    if (!r.ok()) return "err:" + r.status().ToString();
    const AbducedQuery& q = r.value();
    std::string fp = "ok:" + q.entity_relation + "." + q.projection_attr;
    fp += "|" + ToSql(q.adb_query) + "|" + ToSql(q.original_query);
    char posterior[64];
    std::snprintf(posterior, sizeof(posterior), "|%.17g", q.log_posterior);
    fp += posterior;
    fp += "|filters=" + std::to_string(q.NumIncludedFilters()) + "/" +
          std::to_string(q.filters.size());
    for (const Value& k : q.entity_keys) fp += "|" + k.ToString();
    return fp;
  }

  /// Cold serial reference answers, one per workload set.
  static std::vector<std::string> SerialFingerprints() {
    Squid squid(bench_->adb.get());
    std::vector<std::string> out;
    out.reserve(workload_->size());
    for (const auto& examples : *workload_) {
      out.push_back(Fingerprint(squid.Discover(examples)));
    }
    return out;
  }

  /// Entity keys of the first `n` person rows (for direct cache tests).
  static std::vector<Value> PersonKeys(size_t n) {
    auto table = bench_->data.db->GetTable("person");
    EXPECT_TRUE(table.ok());
    auto col = table.value()->ColumnByName("id");
    EXPECT_TRUE(col.ok());
    std::vector<Value> keys;
    for (size_t r = 0; r < n && r < table.value()->num_rows(); ++r) {
      keys.push_back(col.value()->ValueAt(r));
    }
    return keys;
  }

  static ImdbBench* bench_;
  static std::vector<std::vector<std::string>>* workload_;
};
ImdbBench* ServeFixture::bench_ = nullptr;
std::vector<std::vector<std::string>>* ServeFixture::workload_ = nullptr;

// ---------- identity contract ----------

TEST_F(ServeFixture, ServiceMatchesSerialAcrossThreadsAndCacheSizes) {
  const std::vector<std::string> expected = SerialFingerprints();
  struct Config {
    size_t threads;
    size_t cache_bytes;
  };
  // Thread counts and budgets chosen to cover: synchronous serial, parallel
  // uncached, parallel with a roomy cache, and parallel with a budget so
  // tight every shard keeps ~1 profile (constant evictions).
  const Config configs[] = {
      {1, 0}, {1, 8u << 20}, {4, 0}, {4, 8u << 20}, {8, 8u << 20}, {8, 4096},
  };
  for (const Config& config : configs) {
    ServeOptions options;
    options.threads = config.threads;
    options.cache_bytes = config.cache_bytes;
    options.cache_shards = 4;
    SquidService service(bench_->adb.get(), options);
    // Two passes: cold then warm (repeat answers must not drift after the
    // cache fills or evicts).
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < workload_->size(); ++i) {
        auto result = service.DiscoverSync((*workload_)[i]);
        EXPECT_EQ(Fingerprint(result), expected[i])
            << "threads=" << config.threads << " cache=" << config.cache_bytes
            << " pass=" << pass << " set=" << i;
      }
    }
    if (config.cache_bytes == 4096) {
      EXPECT_GT(service.stats().evictions, 0u)
          << "tight budget was expected to force evictions";
    }
  }
}

TEST_F(ServeFixture, PostEvictionAnswersStayIdentical) {
  const std::vector<std::string> expected = SerialFingerprints();
  ServeOptions options;
  options.threads = 2;
  options.cache_bytes = 16384;  // tight: the workload cycles profiles out
  options.cache_shards = 1;     // single shard makes eviction pressure certain
  SquidService service(bench_->adb.get(), options);
  // Warm set 0, cycle through everything else (forcing set 0's entities
  // out), then re-ask set 0.
  EXPECT_EQ(Fingerprint(service.DiscoverSync((*workload_)[0])), expected[0]);
  for (size_t round = 0; round < 2; ++round) {
    for (size_t i = 1; i < workload_->size(); ++i) {
      EXPECT_EQ(Fingerprint(service.DiscoverSync((*workload_)[i])), expected[i]);
    }
  }
  ASSERT_GT(service.stats().evictions, 0u);
  EXPECT_EQ(Fingerprint(service.DiscoverSync((*workload_)[0])), expected[0]);
}

TEST_F(ServeFixture, ProviderSeamMatchesPlainSquid) {
  // A Squid with the cache interposed answers exactly like one without.
  ContextCache::Options cache_options;
  cache_options.max_bytes = 4u << 20;
  ContextCache cache(bench_->adb.get(), cache_options);
  Squid plain(bench_->adb.get());
  Squid cached(bench_->adb.get());
  cached.set_context_provider(&cache);
  for (const auto& examples : *workload_) {
    EXPECT_EQ(Fingerprint(cached.Discover(examples)),
              Fingerprint(plain.Discover(examples)));
  }
  EXPECT_GT(cache.stats().misses, 0u);
}

// ---------- boot from snapshot ----------

TEST_F(ServeFixture, SnapshotBootedServiceMatchesFreshlyBuilt) {
  const std::vector<std::string> expected = SerialFingerprints();
  const std::string path =
      ::testing::TempDir() + "squid_serve_boot_test.sqsnap";
  ASSERT_TRUE(bench_->adb->SaveSnapshot(path).ok());

  struct Config {
    size_t threads;
    size_t cache_bytes;
  };
  // Synchronous uncached and parallel cached: the two serve shapes a boot
  // must reproduce exactly.
  const Config configs[] = {{1, 0}, {4, 8u << 20}};
  for (const Config& config : configs) {
    ServeOptions options;
    options.threads = config.threads;
    options.cache_bytes = config.cache_bytes;
    options.cache_shards = 4;
    auto booted = BootServiceFromSnapshot(path, options);
    ASSERT_TRUE(booted.ok()) << booted.status().ToString();
    EXPECT_GT(booted.value()->load_seconds, 0.0);
    EXPECT_EQ(booted.value()->service->threads(),
              SquidService(bench_->adb.get(), options).threads());
    // Freshly built service over the ORIGINAL αDB, same options.
    SquidService fresh(bench_->adb.get(), options);
    // Two passes: the cold pass fills the booted service's cache from the
    // restored αDB, the warm pass answers from it; both must match the
    // fresh service and the cold serial reference.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < workload_->size(); ++i) {
        auto from_snapshot =
            booted.value()->service->DiscoverSync((*workload_)[i]);
        EXPECT_EQ(Fingerprint(from_snapshot), expected[i])
            << "threads=" << config.threads << " cache=" << config.cache_bytes
            << " pass=" << pass << " set=" << i;
        EXPECT_EQ(Fingerprint(from_snapshot),
                  Fingerprint(fresh.DiscoverSync((*workload_)[i])));
      }
    }
    if (config.cache_bytes > 0) {
      EXPECT_GT(booted.value()->service->stats().hits, 0u)
          << "warm pass should have hit the booted service's cache";
    }
  }
  std::remove(path.c_str());
}

TEST_F(ServeFixture, BootFromCorruptSnapshotFailsCleanly) {
  const std::string path =
      ::testing::TempDir() + "squid_serve_boot_corrupt.sqsnap";
  ASSERT_TRUE(bench_->adb->SaveSnapshot(path).ok());
  // Flip one payload byte; the boot must refuse the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char byte = 0;
    f.seekg(100);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(100);
    f.write(&byte, 1);
  }
  auto booted = BootServiceFromSnapshot(path);
  ASSERT_FALSE(booted.ok());
  EXPECT_EQ(booted.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ---------- discover stats (hoisted lookup satellite) ----------

TEST_F(ServeFixture, DiscoverReportsHoistedLookups) {
  Squid squid(bench_->adb.get());
  auto result = squid.Discover((*workload_)[0]);
  ASSERT_TRUE(result.ok());
  const DiscoverStats& stats = result.value().stats;
  EXPECT_GT(stats.candidate_base_queries, 0u);
  EXPECT_GT(stats.candidates_abduced, 0u);
  EXPECT_LE(stats.candidates_abduced, stats.candidate_base_queries);
  // The candidate loop hands postings-resolved rows to context discovery,
  // so no candidate re-probes the PK index.
  EXPECT_GT(stats.entity_row_lookups_saved, 0u);
  EXPECT_EQ(stats.entity_row_lookups, 0u);

  // The key-only entry point has no rows to hoist.
  auto by_keys = squid.DiscoverForEntities(result.value().entity_relation,
                                           result.value().projection_attr,
                                           result.value().entity_keys);
  ASSERT_TRUE(by_keys.ok());
  EXPECT_GT(by_keys.value().stats.entity_row_lookups, 0u);
  EXPECT_EQ(ToSql(by_keys.value().adb_query), ToSql(result.value().adb_query));
}

// ---------- cache mechanics ----------

TEST_F(ServeFixture, CacheHitsAndCountersTrackProbes) {
  ContextCache::Options options;
  options.max_bytes = 4u << 20;
  options.shards = 2;
  ContextCache cache(bench_->adb.get(), options);
  std::vector<Value> keys = PersonKeys(3);
  ASSERT_EQ(keys.size(), 3u);

  for (const Value& key : keys) {
    bool hit = true;
    auto profile = cache.ProfileFor("person", key, nullptr, &hit);
    ASSERT_TRUE(profile.ok());
    EXPECT_FALSE(hit);
  }
  ServeStats cold = cache.stats();
  EXPECT_EQ(cold.misses, 3u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.entries, 3u);
  EXPECT_GT(cold.bytes, 0u);

  for (const Value& key : keys) {
    bool hit = false;
    auto profile = cache.ProfileFor("person", key, nullptr, &hit);
    ASSERT_TRUE(profile.ok());
    EXPECT_TRUE(hit);
  }
  ServeStats warm = cache.stats();
  EXPECT_EQ(warm.hits, 3u);
  EXPECT_EQ(warm.misses, 3u);
  EXPECT_DOUBLE_EQ(warm.HitRate(), 0.5);

  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.stats().hits, 3u);  // counters survive Clear
}

TEST_F(ServeFixture, CachedProfileMatchesDirectBuild) {
  ContextCache cache(bench_->adb.get());
  std::vector<Value> keys = PersonKeys(2);
  ASSERT_GE(keys.size(), 1u);
  auto direct = BuildEntityContextProfile(*bench_->adb, "person", keys[0]);
  ASSERT_TRUE(direct.ok());
  auto cached = cache.ProfileFor("person", keys[0]);
  ASSERT_TRUE(cached.ok());
  const EntityContextProfile& a = direct.value();
  const EntityContextProfile& b = *cached.value();
  ASSERT_EQ(a.observations.size(), b.observations.size());
  EXPECT_EQ(a.row, b.row);
  for (size_t d = 0; d < a.observations.size(); ++d) {
    EXPECT_EQ(a.observations[d].basic_value, b.observations[d].basic_value);
    EXPECT_EQ(a.observations[d].total, b.observations[d].total);
    ASSERT_EQ(a.observations[d].values.size(), b.observations[d].values.size());
    for (size_t v = 0; v < a.observations[d].values.size(); ++v) {
      EXPECT_EQ(a.observations[d].values[v].first, b.observations[d].values[v].first);
      EXPECT_EQ(a.observations[d].values[v].second, b.observations[d].values[v].second);
    }
  }
}

TEST_F(ServeFixture, LruEvictsLeastRecentlyUsedFirst) {
  std::vector<Value> keys = PersonKeys(3);
  ASSERT_EQ(keys.size(), 3u);

  // Measure each profile's charged bytes with an unbounded single-shard
  // cache, so the bounded cache below can hold exactly two of the three.
  size_t bytes[3];
  {
    ContextCache::Options options;
    options.shards = 1;
    options.max_bytes = 64u << 20;
    ContextCache probe(bench_->adb.get(), options);
    size_t previous = 0;
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(probe.ProfileFor("person", keys[i]).ok());
      size_t now = probe.ApproxBytes();
      bytes[i] = now - previous;
      previous = now;
      ASSERT_GT(bytes[i], 0u);
    }
  }

  ContextCache::Options options;
  options.shards = 1;
  options.max_bytes = bytes[0] + bytes[1] + bytes[2] - 1;  // any two fit
  ContextCache cache(bench_->adb.get(), options);
  ASSERT_TRUE(cache.ProfileFor("person", keys[0]).ok());  // LRU: [0]
  ASSERT_TRUE(cache.ProfileFor("person", keys[1]).ok());  // LRU: [1, 0]
  bool hit = false;
  ASSERT_TRUE(cache.ProfileFor("person", keys[0], nullptr, &hit).ok());
  EXPECT_TRUE(hit);                                       // LRU: [0, 1]
  ASSERT_TRUE(cache.ProfileFor("person", keys[2]).ok());  // evicts 1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Contains("person", keys[0]));
  EXPECT_FALSE(cache.Contains("person", keys[1]));
  EXPECT_TRUE(cache.Contains("person", keys[2]));

  // The evicted entity rebuilds on demand — as a miss — and re-enters,
  // evicting the now-least-recent key 0.
  hit = true;
  ASSERT_TRUE(cache.ProfileFor("person", keys[1], nullptr, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.Contains("person", keys[0]));
  EXPECT_TRUE(cache.Contains("person", keys[2]));
  EXPECT_TRUE(cache.Contains("person", keys[1]));
}

TEST_F(ServeFixture, ForeignKeysAreUncacheableButServed) {
  ContextCache cache(bench_->adb.get());
  // A key string that was never interned cannot be symbol-keyed; the lookup
  // itself must still work (uncached) or fail cleanly.
  auto missing = cache.ProfileFor("person", Value("no-such-entity-xyzzy"));
  EXPECT_FALSE(missing.ok());  // no such person row
  EXPECT_GE(cache.stats().uncacheable, 1u);
  EXPECT_EQ(cache.num_entries(), 0u);
}

// ---------- concurrent sessions ----------

TEST_F(ServeFixture, EightThreadConcurrentSessionsStayIdentical) {
  const std::vector<std::string> expected = SerialFingerprints();
  ServeOptions options;
  options.threads = 8;
  options.queue_capacity = 4;  // small queue: exercises Push backpressure
  options.cache_bytes = 1u << 20;
  options.cache_shards = 8;
  SquidService service(bench_->adb.get(), options);

  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 12;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Each client walks the workload from its own offset: repeats across
      // clients hit the cache while the walk keeps unique sets flowing.
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        size_t i = (c * 3 + r) % workload_->size();
        auto result = service.DiscoverSync((*workload_)[i]);
        if (Fingerprint(result) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.hits, 0u);  // repeats across clients must share profiles
}

TEST_F(ServeFixture, BatchFuturesResolveInAnyOrder) {
  ServeOptions options;
  options.threads = 4;
  SquidService service(bench_->adb.get(), options);
  std::vector<std::vector<std::string>> batch;
  for (size_t i = 0; i < 6; ++i) batch.push_back((*workload_)[i % workload_->size()]);
  auto futures = service.DiscoverBatch(batch);
  ASSERT_EQ(futures.size(), 6u);
  const std::vector<std::string> expected = SerialFingerprints();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(Fingerprint(futures[i].get()), expected[i % workload_->size()]);
  }
  EXPECT_EQ(service.stats().batches, 1u);
}

TEST_F(ServeFixture, UnknownExamplesFailCleanly) {
  SquidService service(bench_->adb.get(), {});
  auto result = service.DiscoverSync({"entirely-unknown-string-xyzzy"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(service.stats().failed, 1u);
}

// ---------- repl ----------

TEST_F(ServeFixture, ReplAnswersScriptedRequests) {
  ServeOptions options;
  options.threads = 2;
  SquidService service(bench_->adb.get(), options);
  const ImdbManifest& m = bench_->data.manifest;
  std::istringstream in("# comment\n" + m.costar_a + "; " + m.costar_b +
                        "\n" + m.costar_a + "; " + m.costar_b + " | " +
                        m.costar_b + "; " + m.costar_a +
                        "\nno-such-example-xyzzy\n.stats\n.quit\n");
  std::ostringstream out;
  Repl repl(&service, &in, &out);
  Repl::RunStats stats = repl.Run();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.errors, 1u);
  const std::string text = out.str();
  EXPECT_NE(text.find("ok base=person.name"), std::string::npos);
  EXPECT_NE(text.find("sql SELECT"), std::string::npos);
  EXPECT_NE(text.find("err "), std::string::npos);
  EXPECT_NE(text.find("cache hits="), std::string::npos);
}

TEST_F(ServeFixture, ReplReportsMalformedLinesWithoutDispatching) {
  SquidService service(bench_->adb.get(), {});
  const ImdbManifest& m = bench_->data.manifest;
  // An all-';' line, an all-'|' line, and a batch with one empty segment:
  // every malformed piece gets an err answer (the client is waiting), none
  // are dispatched, and valid segments of a mixed batch still run.
  std::istringstream in(";;;\n|||\n" + m.costar_a + "; " + m.costar_b +
                        " | ;; \n.quit\n");
  std::ostringstream out;
  Repl repl(&service, &in, &out);
  Repl::RunStats stats = repl.Run();
  EXPECT_EQ(stats.requests, 1u);  // only the costar segment dispatched
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 3u);
  const std::string text = out.str();
  EXPECT_NE(text.find("err empty request segment"), std::string::npos);
  EXPECT_NE(text.find("err empty request line (only separators)"),
            std::string::npos);
  EXPECT_NE(text.find("ok base="), std::string::npos);
  EXPECT_EQ(service.stats().requests, 1u);
}

TEST_F(ServeFixture, ReplRestoresCallerStreamState) {
  SquidService service(bench_->adb.get(), {});
  const ImdbManifest& m = bench_->data.manifest;
  // Responses print with precision(6) + std::fixed and .stats with
  // precision(3); none of it may leak into the caller's stream.
  std::istringstream in(m.costar_a + "; " + m.costar_b + "\n.stats\n.quit\n");
  std::ostringstream out;
  out.precision(11);
  out.setf(std::ios_base::scientific, std::ios_base::floatfield);
  const std::ios_base::fmtflags flags_before = out.flags();
  Repl repl(&service, &in, &out);
  Repl::RunStats stats = repl.Run();
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(out.precision(), 11);
  EXPECT_EQ(out.flags(), flags_before);
  // The response itself did use fixed notation for the posterior.
  EXPECT_NE(out.str().find("posterior=-"), std::string::npos);
  EXPECT_NE(out.str().find("hit_rate="), std::string::npos);
}

TEST_F(ServeFixture, ReplParsingSplitsExamplesAndBatches) {
  EXPECT_EQ(Repl::ParseExamples(" a ; b;; c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Repl::SplitBatch("a; b | c"),
            (std::vector<std::string>{"a; b", "c"}));
  EXPECT_EQ(Repl::SplitBatch("solo"), (std::vector<std::string>{"solo"}));
}

// ---------- bounded queue ----------

TEST(BoundedQueueTest, FifoOrderAndTryPush) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));
    pushed.store(true);
  });
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseReleasesProducersAndDrainsConsumers) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(7));
  std::thread producer([&] { EXPECT_FALSE(queue.Push(8)); });  // blocked -> false
  queue.Close();
  producer.join();
  EXPECT_FALSE(queue.Push(9));
  EXPECT_EQ(queue.Pop().value(), 7);  // queued items drain after Close
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, TryOpsRespectCloseButStillDrain) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(3));  // closed beats available capacity
  // Items queued at close are all still delivered, via either pop flavor.
  EXPECT_EQ(queue.TryPop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.TryPop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // closed + drained: no blocking
}

TEST(BoundedQueueTest, ConcurrentCloseReleasesEveryBlockedWaiter) {
  // Producers blocked on a full queue and, in a second phase, consumers
  // blocked on an empty one: Close() must wake them all exactly once —
  // producers with `false`, consumers with nullopt after the drain.
  {
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.Push(0));
    std::vector<std::thread> producers;
    std::atomic<int> refused{0};
    for (int i = 0; i < 4; ++i) {
      producers.emplace_back([&] {
        if (!queue.Push(99)) refused.fetch_add(1);
      });
    }
    queue.Close();
    for (auto& t : producers) t.join();
    EXPECT_EQ(refused.load(), 4);
    EXPECT_EQ(queue.Pop().value(), 0);  // the pre-close item survives
    EXPECT_FALSE(queue.Pop().has_value());
  }
  {
    BoundedQueue<int> queue(1);
    std::vector<std::thread> consumers;
    std::atomic<int> empty_handed{0};
    for (int i = 0; i < 4; ++i) {
      consumers.emplace_back([&] {
        if (!queue.Pop().has_value()) empty_handed.fetch_add(1);
      });
    }
    queue.Close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(empty_handed.load(), 4);
  }
}

// ---------- shutdown race + rejection accounting ----------

TEST_F(ServeFixture, StatsPartitionRequestsIntoCompletedAndRejected) {
  // A private registry isolates this service's histograms from every other
  // test's traffic (declared before the service: must outlive it).
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.threads = 2;
  options.metrics = &registry;
  SquidService service(bench_->adb.get(), options);
  // A served mix: sync answers plus one failure.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service.DiscoverSync((*workload_)[0]).ok());
  }
  EXPECT_FALSE(service.DiscoverSync({"no-such-example-xyzzy"}).ok());
  // Shed requests: after Close, both admission paths reject.
  service.Close();
  auto late = service.Discover((*workload_)[0]);
  EXPECT_EQ(late.get().status().code(), StatusCode::kNotSupported);
  std::future<Result<AbducedQuery>> try_future;
  EXPECT_FALSE(service.TryDiscover((*workload_)[0], &try_future));
  EXPECT_EQ(try_future.get().status().code(), StatusCode::kNotSupported);
  EXPECT_FALSE(service.TryDiscover(
      (*workload_)[0], [](Result<AbducedQuery>) { FAIL(); }));

  ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.completed, 4u);  // the requests that actually ran
  EXPECT_EQ(stats.failed, 1u);     // ... of which one answered non-OK
  EXPECT_EQ(stats.rejected, 3u);   // shed, disjoint from completed
  // The invariant the double-counting bug broke: at quiescence every
  // request is either completed or rejected, never both.
  EXPECT_EQ(stats.requests, stats.completed + stats.rejected);
  // The latency histograms partition the same way: exactly the completed
  // requests were measured (rejected ones never reach a worker), and the
  // percentile chain is ordered.
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(stats.queue_wait_ns.count, stats.completed);
    EXPECT_EQ(stats.request_ns.count, stats.completed);
    EXPECT_LE(stats.RequestP50Ns(), stats.RequestP99Ns());
    EXPECT_LE(stats.RequestP99Ns(), stats.RequestMaxNs());
    EXPECT_LE(stats.QueueWaitP50Ns(), stats.QueueWaitP99Ns());
  }
}

TEST_F(ServeFixture, TryDiscoverShedsWhenTheQueueIsFullAndCountsOnce) {
  // threads=2 gives real worker threads; a capacity-1 queue behind slow-ish
  // requests guarantees some TryDiscover calls land on a full queue.
  ServeOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  SquidService service(bench_->adb.get(), options);
  const size_t kAttempts = 64;
  std::vector<std::future<Result<AbducedQuery>>> admitted;
  size_t shed = 0;
  for (size_t i = 0; i < kAttempts; ++i) {
    std::future<Result<AbducedQuery>> future;
    if (service.TryDiscover((*workload_)[i % workload_->size()], &future)) {
      admitted.push_back(std::move(future));
    } else {
      ++shed;
      // A shed future resolves immediately, with the shed status.
      EXPECT_EQ(future.get().status().code(), StatusCode::kNotSupported);
    }
  }
  for (auto& future : admitted) (void)future.get();  // quiesce
  EXPECT_GT(shed, 0u) << "a queue of 1 never rejected a 64-deep burst";
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, kAttempts);
  EXPECT_EQ(stats.rejected, shed);
  EXPECT_EQ(stats.completed, admitted.size());
  EXPECT_EQ(stats.requests, stats.completed + stats.rejected);
}

TEST_F(ServeFixture, CloseRacingConcurrentAdmissionsNeverLosesARequest) {
  // The shutdown race: producers hammer Discover/TryDiscover while another
  // thread Close()es the service mid-stream, then the service is destroyed.
  // Every future must resolve (an admission is atomic: it either fully
  // lands before the close or is rejected), and nothing crashes or leaks a
  // drain task into the dying pool. Run several rounds to vary the
  // interleaving; TSan gives this teeth.
  for (int round = 0; round < 6; ++round) {
    ServeOptions options;
    options.threads = 2 + (round % 2);
    options.queue_capacity = 2;
    auto service = std::make_unique<SquidService>(bench_->adb.get(), options);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 6;
    std::atomic<uint64_t> resolved{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const auto& examples = (*workload_)[(p + i) % workload_->size()];
          if (i % 2 == 0) {
            auto future = service->Discover(examples);
            future.wait();
            resolved.fetch_add(1);
          } else {
            std::future<Result<AbducedQuery>> future;
            service->TryDiscover(examples, &future);
            future.wait();  // admitted or shed, it must resolve
            resolved.fetch_add(1);
          }
        }
      });
    }
    // Close midway through the storm (round 0 closes immediately).
    if (round > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(round * 3));
    }
    service->Close();
    for (auto& t : producers) t.join();
    EXPECT_EQ(resolved.load(), uint64_t(kProducers) * kPerProducer);
    ServeStats stats = service->stats();
    EXPECT_EQ(stats.requests, stats.completed + stats.rejected);
    service.reset();  // ~SquidService after Close: second close is a no-op
  }
}

// ---------- observability: byte identity and phase traces ----------

/// RAII: force metrics on/off for a test, restore the prior state after.
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled) : saved_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(enabled);
  }
  ~ScopedMetricsEnabled() { obs::SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST_F(ServeFixture, AnswersAreByteIdenticalWithTracingAndMetricsOnOrOff) {
  // The observability contract: tracing and metrics only watch the
  // pipeline. Every combination of {metrics on/off} x {tracing on/off} at
  // threads {1, 8} must fingerprint identically to the cold serial
  // reference.
  const std::vector<std::string> expected = SerialFingerprints();
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (bool metrics_on : {false, true}) {
      for (bool trace_on : {false, true}) {
        ScopedMetricsEnabled scoped(metrics_on);
        obs::MetricsRegistry registry;
        ServeOptions options;
        options.threads = threads;
        options.metrics = &registry;
        options.trace = trace_on;
        SquidService service(bench_->adb.get(), options);
        for (size_t i = 0; i < workload_->size(); ++i) {
          EXPECT_EQ(Fingerprint(service.DiscoverSync((*workload_)[i])),
                    expected[i])
              << "threads=" << threads << " metrics=" << metrics_on
              << " trace=" << trace_on << " set=" << i;
        }
      }
    }
  }
}

TEST_F(ServeFixture, MetricsDisabledLeavesHistogramsEmpty) {
  ScopedMetricsEnabled scoped(false);
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.threads = 1;
  options.metrics = &registry;
  SquidService service(bench_->adb.get(), options);
  EXPECT_TRUE(service.DiscoverSync((*workload_)[0]).ok());
  ServeStats stats = service.stats();
  EXPECT_TRUE(stats.queue_wait_ns.Empty());
  EXPECT_TRUE(stats.request_ns.Empty());
}

TEST_F(ServeFixture, LastTraceBreaksTheRequestIntoPipelinePhases) {
  ScopedMetricsEnabled scoped(true);
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.threads = 4;
  options.metrics = &registry;
  options.trace = true;
  SquidService service(bench_->adb.get(), options);
  EXPECT_EQ(service.last_trace(), nullptr);  // nothing traced yet
  ASSERT_TRUE(service.DiscoverSync((*workload_)[0]).ok());
  std::shared_ptr<const obs::RequestTrace> trace = service.last_trace();
  ASSERT_NE(trace, nullptr);
  // The request passed through the pipeline: entity lookup once, the
  // queue-wait span once, and at least one candidate's context + abduction
  // + query-build phases (fan-out may run several).
  EXPECT_EQ(trace->PhaseCalls(obs::Phase::kEntityLookup), 1u);
  EXPECT_EQ(trace->PhaseCalls(obs::Phase::kQueueWait), 1u);
  EXPECT_GE(trace->PhaseCalls(obs::Phase::kDisambiguation), 1u);
  EXPECT_GE(trace->PhaseCalls(obs::Phase::kContextDiscovery), 1u);
  EXPECT_GE(trace->PhaseCalls(obs::Phase::kAbduction), 1u);
  EXPECT_GE(trace->PhaseCalls(obs::Phase::kQueryBuild), 1u);
  EXPECT_GT(trace->PhaseNs(obs::Phase::kAbduction), 0u);
  // Runtime toggle: turning tracing off stops replacing the last trace.
  service.set_tracing(false);
  ASSERT_TRUE(service.DiscoverSync((*workload_)[1]).ok());
  EXPECT_EQ(service.last_trace(), trace);
}

TEST_F(ServeFixture, ReplMetricsAndTraceCommandsWork) {
  ScopedMetricsEnabled scoped(true);
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.threads = 1;
  options.metrics = &registry;
  SquidService service(bench_->adb.get(), options);
  const ImdbManifest& m = bench_->data.manifest;
  std::istringstream in(".trace on\n" + m.costar_a + "; " + m.costar_b +
                        "\n.trace\n.metrics\n.stats\n.trace off\n.quit\n");
  std::ostringstream out;
  Repl repl(&service, &in, &out);
  Repl::RunStats run = repl.Run();
  EXPECT_EQ(run.requests, 1u);
  EXPECT_EQ(run.ok, 1u);
  const std::string text = out.str();
  EXPECT_NE(text.find("trace on"), std::string::npos);
  EXPECT_NE(text.find("trace of last request:"), std::string::npos);
  EXPECT_NE(text.find("entity_lookup"), std::string::npos);
  EXPECT_NE(text.find("# TYPE squid_serve_request_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("latency p50="), std::string::npos);
  EXPECT_NE(text.find("queue_wait p50="), std::string::npos);
  EXPECT_NE(text.find("trace off"), std::string::npos);
}

}  // namespace
}  // namespace squid
