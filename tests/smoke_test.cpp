#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "core/squid.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

// End-to-end smoke test for the tier-1 build: the full Discover pipeline on
// the paper's Example 1.1 database, with the abduced SQL round-tripped
// through the sql/ parser and printer. If this passes, the offline phase
// (aDB construction), the online phase (lookup -> disambiguation -> context
// discovery -> abduction -> query building), and the SQL layer all link and
// agree on signatures.

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::NamesOf;

class SmokeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeAcademicsDb();
    auto adb = AbductionReadyDb::Build(*db_);
    ASSERT_TRUE(adb.ok()) << adb.status().ToString();
    adb_ = std::move(adb).value();
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<AbductionReadyDb> adb_;
};

// Printing a query, parsing the text back, and printing again must be a
// fixed point: the second print equals the first.
void ExpectSqlRoundTrips(const Query& query) {
  const std::string sql = ToSql(query);
  auto reparsed = ParseQuery(sql);
  ASSERT_TRUE(reparsed.ok()) << "abduced SQL does not re-parse: " << sql
                             << "\n" << reparsed.status().ToString();
  EXPECT_EQ(ToSql(reparsed.value()), sql);
}

TEST_F(SmokeFixture, DiscoverEndToEndAndSqlRoundTrips) {
  Squid squid(adb_.get());
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok()) << abduced.status().ToString();
  const AbducedQuery& result = abduced.value();

  // Base query: the examples are academics, identified by name.
  EXPECT_EQ(result.entity_relation, "academics");
  EXPECT_EQ(result.projection_attr, "name");
  EXPECT_EQ(result.entity_keys.size(), 2u);

  // Both the original-schema SPJAI query and the aDB SPJ form must
  // round-trip through the parser and printer.
  ExpectSqlRoundTrips(result.original_query);
  ExpectSqlRoundTrips(result.adb_query);

  // The abduced aDB query must execute and return at least the examples.
  auto rs = ExecuteQuery(adb_->database(), result.adb_query);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto names = NamesOf(rs.value());
  EXPECT_NE(std::find(names.begin(), names.end(), "Dan Susic"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Sam Madsen"), names.end());
}

TEST_F(SmokeFixture, MultilinePrintAlsoReparses) {
  Squid squid(adb_.get());
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok()) << abduced.status().ToString();

  // The multiline pretty-printer output must parse back to the same query
  // as the single-line form.
  const Query& query = abduced.value().original_query;
  auto reparsed = ParseQuery(ToSql(query, {.multiline = true}));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(ToSql(reparsed.value()), ToSql(query));
}

}  // namespace
}  // namespace squid
