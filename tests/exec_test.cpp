#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/join_hash.h"
#include "exec/tuple_buffer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::MakeMoviesDb;
using testing::NameSet;
using testing::NamesOf;

Result<ResultSet> RunSql(const Database& db, const std::string& sql) {
  auto q = ParseQuery(sql);
  if (!q.ok()) return q.status();
  return ExecuteQuery(db, q.value());
}

TEST(ExecutorTest, ScanAndProject) {
  auto db = MakeAcademicsDb();
  auto rs = RunSql(*db, "SELECT a.name FROM academics a");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 6u);
}

TEST(ExecutorTest, SelectionPushdown) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.gender = 'Female'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Laura Holt"}));
}

TEST(ExecutorTest, NumericRangeSelection) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.age BETWEEN 50 AND 60");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 4u);  // 60, 52, 58, 50
}

TEST(ExecutorTest, PaperExample11Join) {
  // Q2 of Example 1.1: academics with interest 'data management'.
  auto db = MakeAcademicsDb();
  auto rs = RunSql(*db,
                "SELECT a.name FROM academics a, research r, interest i "
                "WHERE r.aid = a.id AND r.interest_id = i.id AND "
                "i.name = 'data management'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Dan Susic", "Joe Hellman", "Sam Madsen"}));
}

TEST(ExecutorTest, TwoHopJoin) {
  // Persons who appeared in a Comedy.
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db,
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m, "
                "movietogenre mg, genre g WHERE c.person_id = p.id AND "
                "c.movie_id = m.id AND mg.movie_id = m.id AND "
                "mg.genre_id = g.id AND g.name = 'Comedy'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Ewan McGregg", "Jim Carris",
                                      "Laura Holt"}));
}

TEST(ExecutorTest, DistinctDeduplicates) {
  auto db = MakeMoviesDb();
  // Without DISTINCT, Jim Carris appears once per comedy.
  auto dup = RunSql(*db,
                 "SELECT p.name FROM person p, castinfo c, movie m, "
                 "movietogenre mg, genre g WHERE c.person_id = p.id AND "
                 "c.movie_id = m.id AND mg.movie_id = m.id AND "
                 "mg.genre_id = g.id AND g.name = 'Comedy'");
  ASSERT_TRUE(dup.ok());
  EXPECT_GT(dup.value().num_rows(), 4u);
}

TEST(ExecutorTest, GroupByHavingCount) {
  // Persons with at least 3 comedy appearances (Fig. 5's Jim Carris).
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db,
                "SELECT p.name FROM person p, castinfo c, movietogenre mg, "
                "genre g WHERE c.person_id = p.id AND "
                "mg.movie_id = c.movie_id AND mg.genre_id = g.id AND "
                "g.name = 'Comedy' GROUP BY p.id HAVING count(*) >= 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()), (std::vector<std::string>{"Jim Carris"}));
}

TEST(ExecutorTest, HavingOperatorVariants) {
  auto db = MakeMoviesDb();
  // Exactly one comedy appearance: Laura and Emma.
  auto rs = RunSql(*db,
                "SELECT p.name FROM person p, castinfo c, movietogenre mg, "
                "genre g WHERE c.person_id = p.id AND "
                "mg.movie_id = c.movie_id AND mg.genre_id = g.id AND "
                "g.name = 'Comedy' GROUP BY p.id HAVING count(*) <= 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Laura Holt"}));
}

TEST(ExecutorTest, Intersection) {
  auto db = MakeMoviesDb();
  // Cast of 'Mighty Bruce' ∩ cast of 'Phillip's Letters' = Jim, Ewan.
  auto rs = RunSql(*db,
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                "m.title = 'Mighty Bruce' "
                "INTERSECT "
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                "m.title = 'Phillip''s Letters'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Ewan McGregg", "Jim Carris"}));
}

TEST(ExecutorTest, AntiJoinExcludesSelf) {
  auto db = MakeMoviesDb();
  // Co-actors of anyone: pairs (p, q) sharing a movie with p != q.
  auto with_self = RunSql(*db,
                       "SELECT p.name FROM person p, castinfo c1, castinfo c2, "
                       "person q WHERE c1.person_id = p.id AND "
                       "c2.movie_id = c1.movie_id AND c2.person_id = q.id");
  auto without_self = RunSql(*db,
                          "SELECT p.name FROM person p, castinfo c1, castinfo "
                          "c2, person q WHERE c1.person_id = p.id AND "
                          "c2.movie_id = c1.movie_id AND c2.person_id = q.id "
                          "AND q.id != p.id");
  ASSERT_TRUE(with_self.ok());
  ASSERT_TRUE(without_self.ok());
  EXPECT_LT(without_self.value().num_rows(), with_self.value().num_rows());
}

TEST(ExecutorTest, DisconnectedFromIsCartesian) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p, genre g");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 6u * 3u);
}

TEST(ExecutorTest, EmptyResultIsOk) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.age > 200");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 0u);
}

TEST(ExecutorTest, UnknownTableErrors) {
  auto db = MakeMoviesDb();
  EXPECT_FALSE(RunSql(*db, "SELECT x.a FROM missing x").ok());
}

TEST(ExecutorTest, UnknownColumnErrors) {
  auto db = MakeMoviesDb();
  EXPECT_FALSE(RunSql(*db, "SELECT p.nope FROM person p").ok());
  EXPECT_FALSE(RunSql(*db, "SELECT p.name FROM person p WHERE p.nope = 1").ok());
}

TEST(ExecutorTest, JoinOnStringKeys) {
  // Build a tiny DB joined on string values.
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kString}}));
  auto b = db.CreateTable(
      Schema("b", {{"k", ValueType::kString}, {"v", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->AppendRow({Value("x")}).ok());
  ASSERT_TRUE(a.value()->AppendRow({Value("y")}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value("x"), Value(static_cast<int64_t>(1))}).ok());
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()), (std::vector<std::string>{"x"}));
}

TEST(ExecutorTest, NullJoinKeysNeverMatch) {
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kInt64}}));
  auto b = db.CreateTable(Schema("b", {{"k", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value::Null()}).ok());
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 0u);
}

TEST(ExecutorTest, MultiEdgeJoinAppliesAllConditions) {
  // Join on two attributes simultaneously.
  Database db("d");
  auto a = db.CreateTable(
      Schema("a", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  auto b = db.CreateTable(
      Schema("b", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto I = [](int64_t v) { return Value(v); };
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(1)}).ok());
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(2)}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(1), I(1)}).ok());
  auto rs = RunSql(db, "SELECT a.x FROM a a, b b WHERE a.x = b.x AND a.y = b.y");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 1u);
}

TEST(ExecutorTest, CrossPoolStringProbeDictionaryMiss) {
  // The probe table keeps its own StringPool (attached, not created through
  // the Database), so probes must translate through the build dictionary;
  // strings absent from it (the dictionary-miss path) match nothing.
  Database db("d");
  auto b = db.CreateTable(
      Schema("b", {{"k", ValueType::kString}, {"v", ValueType::kInt64}}));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value()->AppendRow({Value("x"), Value(static_cast<int64_t>(1))}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value("z"), Value(static_cast<int64_t>(2))}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value("w"), Value(static_cast<int64_t>(3))}).ok());

  auto a = std::make_shared<Table>(Schema("a", {{"k", ValueType::kString}}));
  ASSERT_TRUE(a->AppendRow({Value("x")}).ok());
  ASSERT_TRUE(a->AppendRow({Value("y")}).ok());  // not in db's dictionary
  ASSERT_NE(a->pool(), db.pool());
  ASSERT_TRUE(db.AttachTable(a).ok());

  // a (2 rows) starts, so b is the build side and a's foreign pool probes it.
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()), (std::vector<std::string>{"x"}));
}

TEST(ExecutorTest, IntDoubleKeyUnification) {
  // Double probes against an int build side unify on value (1 == 1.0);
  // fractional doubles match nothing; doubles beyond ±9.2e18 hit the
  // overflow guard instead of undefined casts.
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kInt64}}));
  auto b = db.CreateTable(Schema("b", {{"k", ValueType::kDouble}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t v : {1, 3, 5, 7}) {
    ASSERT_TRUE(a.value()->AppendRow({Value(v)}).ok());
  }
  for (double d : {1.0, 2.5, 9.3e18, -9.3e18}) {
    ASSERT_TRUE(b.value()->AppendRow({Value(d)}).ok());
  }
  // b (4 rows) = probe side? No: a has 4 rows too, so the first
  // join-connected alias wins ties — a starts, b builds. Probe ints against
  // the double build dictionary unifies 1 with 1.0.
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().row(0)[0].AsInt64(), 1);

  // Now make b start (smaller), so doubles probe the int build side and the
  // overflow guard + fractional rejection must fire.
  auto c = db.CreateTable(Schema("c", {{"k", ValueType::kInt64}}));
  ASSERT_TRUE(c.ok());
  for (int64_t v : {1, 3, 5, 7, 9}) {
    ASSERT_TRUE(c.value()->AppendRow({Value(v)}).ok());
  }
  auto rs2 = RunSql(db, "SELECT b.k FROM b b, c c WHERE b.k = c.k");
  ASSERT_TRUE(rs2.ok());
  ASSERT_EQ(rs2.value().num_rows(), 1u);
  EXPECT_EQ(rs2.value().row(0)[0].AsDouble(), 1.0);
}

TEST(ExecutorTest, MultiEdgeExtraJoinsAcrossTwoBoundAliases) {
  // When the newly-bound alias joins two *different* already-bound aliases,
  // the second edge rides along as an extra in-pass filter.
  Database db("d");
  auto a = db.CreateTable(
      Schema("a", {{"x", ValueType::kInt64}, {"z", ValueType::kInt64}}));
  auto b = db.CreateTable(
      Schema("b", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  auto c = db.CreateTable(
      Schema("c", {{"y", ValueType::kInt64}, {"z", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  auto I = [](int64_t v) { return Value(v); };
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(10)}).ok());
  ASSERT_TRUE(a.value()->AppendRow({I(2), I(20)}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(1), I(100)}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(2), I(200)}).ok());
  ASSERT_TRUE(c.value()->AppendRow({I(100), I(10)}).ok());   // matches a=1 chain
  ASSERT_TRUE(c.value()->AppendRow({I(200), I(999)}).ok());  // z mismatch: dropped
  auto rs = RunSql(db,
                   "SELECT a.x FROM a a, b b, c c WHERE a.x = b.x AND "
                   "b.y = c.y AND a.z = c.z");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().row(0)[0].AsInt64(), 1);
}

TEST(ExecutorTest, AntiJoinDropsNullsOnEitherSide) {
  // Anti-join semantics: a tuple survives only when BOTH cells are non-null
  // and unequal — a null on either side drops the tuple.
  Database db("d");
  auto a = db.CreateTable(
      Schema("a", {{"j", ValueType::kInt64}, {"k", ValueType::kInt64}}));
  auto b = db.CreateTable(
      Schema("b", {{"j", ValueType::kInt64}, {"k", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok());
  auto I = [](int64_t v) { return Value(v); };
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(7)}).ok());
  ASSERT_TRUE(a.value()->AppendRow({I(1), Value::Null()}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(1), I(8)}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(1), Value::Null()}).ok());
  // Join on j pairs everything; the anti-join keeps only (7, 8).
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.j = b.j AND a.k != b.k");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().row(0)[0].AsInt64(), 7);
}

TEST(ExecutorTest, SameAliasEqualityPredicateFilters) {
  // The parser routes any col = col comparison into join_predicates, but a
  // same-alias edge (t.x = t.y) never has exactly one side bound, so the
  // join bind loop can't pick it — it must be applied as a post-join
  // filter. Regression: it used to be silently dropped.
  Database db("d");
  auto t = db.CreateTable(
      Schema("t", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  auto I = [](int64_t v) { return Value(v); };
  ASSERT_TRUE(t.value()->AppendRow({I(1), I(1)}).ok());
  ASSERT_TRUE(t.value()->AppendRow({I(2), I(3)}).ok());
  ASSERT_TRUE(t.value()->AppendRow({I(4), Value::Null()}).ok());  // null != 4
  auto rs = RunSql(db, "SELECT t.x FROM t t WHERE t.x = t.y");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().row(0)[0].AsInt64(), 1);

  // Also applied when the alias participates in a real join.
  auto u = db.CreateTable(Schema("u", {{"x", ValueType::kInt64}}));
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(u.value()->AppendRow({I(1)}).ok());
  ASSERT_TRUE(u.value()->AppendRow({I(2)}).ok());
  auto joined =
      RunSql(db, "SELECT t.x FROM t t, u u WHERE t.x = u.x AND t.x = t.y");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined.value().num_rows(), 1u);
  EXPECT_EQ(joined.value().row(0)[0].AsInt64(), 1);
}

TEST(ExecutorTest, IntersectHasSetSemantics) {
  // INTERSECT output is a set even when both branches produce duplicates.
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db,
                   "SELECT p.name FROM person p, castinfo c "
                   "WHERE c.person_id = p.id "
                   "INTERSECT "
                   "SELECT p.name FROM person p, castinfo c "
                   "WHERE c.person_id = p.id");
  ASSERT_TRUE(rs.ok());
  auto no_distinct = RunSql(*db,
                            "SELECT p.name FROM person p, castinfo c "
                            "WHERE c.person_id = p.id");
  ASSERT_TRUE(no_distinct.ok());
  EXPECT_GT(no_distinct.value().num_rows(), rs.value().num_rows());
  EXPECT_EQ(NameSet(rs.value()), NameSet(no_distinct.value()));
  // And each surviving row appears exactly once.
  ResultSet deduped = rs.value();
  deduped.Deduplicate();
  EXPECT_EQ(deduped.num_rows(), rs.value().num_rows());
}

// ---------- Plan statistics (pinning the executor's plan choices) ----------

TEST(ExecStatsTest, StartAliasAvoidsDisconnectedCartesian) {
  // c (1 row) is join-disconnected and globally smallest; the start pick
  // must ignore it and begin at b (smallest join-connected), so the hash
  // join prunes a to 5 tuples BEFORE the cartesian expansion with c.
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kInt64}}));
  auto b = db.CreateTable(Schema("b", {{"k", ValueType::kInt64}}));
  auto c = db.CreateTable(Schema("c", {{"v", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  for (int64_t v = 0; v < 50; ++v) {
    ASSERT_TRUE(a.value()->AppendRow({Value(v)}).ok());
  }
  for (int64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE(b.value()->AppendRow({Value(v)}).ok());
  }
  ASSERT_TRUE(c.value()->AppendRow({Value(static_cast<int64_t>(0))}).ok());

  auto q = ParseQuery("SELECT a.k FROM a a, b b, c c WHERE a.k = b.k");
  ASSERT_TRUE(q.ok());
  Executor exec(&db);
  auto rs = exec.Execute(q.value());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 5u);
  // Plan pin: 5 join matches + 5 cartesian expansions — NOT the 50-tuple
  // cartesian a pre-fix start at c would have materialized.
  EXPECT_EQ(exec.stats().rows_joined, 5u);
  EXPECT_EQ(exec.stats().tuples_materialized, 10u);
  EXPECT_EQ(exec.stats().probe_batches, 1u);
  EXPECT_EQ(exec.stats().join_hashes_built, 1u);
}

TEST(ExecStatsTest, RowsScannedCountsOnlyPredicateVisits) {
  // Aliases without pushed-down predicates prune the scan entirely and
  // contribute nothing to rows_scanned.
  auto db = MakeMoviesDb();
  auto q = ParseQuery(
      "SELECT p.name FROM person p, castinfo c "
      "WHERE c.person_id = p.id AND p.gender = 'Female'");
  ASSERT_TRUE(q.ok());
  Executor exec(db.get());
  auto rs = exec.Execute(q.value());
  ASSERT_TRUE(rs.ok());
  const size_t person_rows = db->GetTable("person").value()->num_rows();
  EXPECT_EQ(exec.stats().rows_scanned, person_rows);  // castinfo adds 0
}

// ---------- FlatJoinHash / TupleBuffer ----------

TEST(FlatJoinHashTest, ProbeHitMissAndOrderPreservation) {
  Database db("d");
  auto t = db.CreateTable(Schema("t", {{"k", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  for (int64_t v : {7, 3, 7, 9, 3, 7}) {
    ASSERT_TRUE(t.value()->AppendRow({Value(v)}).ok());
  }
  std::vector<uint32_t> rows = {0, 1, 2, 3, 4, 5};
  auto hash = FlatJoinHash::Build(t.value()->column(0), rows);
  EXPECT_EQ(hash.num_keys(), 3u);
  EXPECT_EQ(hash.num_rows(), 6u);
  auto span7 = hash.Probe(static_cast<uint64_t>(7));
  ASSERT_EQ(span7.size, 3u);
  // Build order must be preserved within a key (output-order contract).
  EXPECT_EQ(std::vector<uint32_t>(span7.begin(), span7.end()),
            (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_TRUE(hash.Probe(static_cast<uint64_t>(8)).empty());

  uint64_t keys[3] = {3, 8, 9};
  uint8_t valid[3] = {1, 1, 0};
  FlatJoinHash::RowSpan spans[3];
  hash.ProbeBatch(keys, valid, 3, spans);
  EXPECT_EQ(spans[0].size, 2u);
  EXPECT_TRUE(spans[1].empty());
  EXPECT_TRUE(spans[2].empty());  // invalid probes come back empty
}

TEST(FlatJoinHashTest, EmptyAndNullOnlyBuilds) {
  Database db("d");
  auto t = db.CreateTable(Schema("t", {{"k", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()->AppendRow({Value::Null()}).ok());
  auto empty = FlatJoinHash::Build(t.value()->column(0), {});
  EXPECT_TRUE(empty.Probe(0).empty());
  auto null_only = FlatJoinHash::Build(t.value()->column(0), {0});
  EXPECT_EQ(null_only.num_rows(), 0u);  // nulls never join
  EXPECT_TRUE(null_only.Probe(0).empty());
}

TEST(TupleBufferTest, ExpandAndKeep) {
  TupleBuffer base;
  base.InitSingle({10, 11, 12});
  EXPECT_EQ(base.width(), 1u);
  EXPECT_EQ(base.size(), 3u);

  TupleBuffer wide;
  wide.InitEmpty(2, 4);
  uint32_t sel[] = {0, 0, 2};
  uint32_t rows[] = {100, 101, 102};
  wide.AppendExpanded(base, sel, rows, 3);
  EXPECT_EQ(wide.width(), 2u);
  EXPECT_EQ(wide.size(), 3u);
  EXPECT_EQ(wide.At(1, 0), 10u);
  EXPECT_EQ(wide.At(1, 1), 101u);
  EXPECT_EQ(wide.At(2, 0), 12u);

  uint32_t keep[] = {0, 2};
  wide.Keep(keep, 2);
  EXPECT_EQ(wide.size(), 2u);
  EXPECT_EQ(wide.At(1, 0), 12u);
  EXPECT_EQ(wide.At(1, 1), 102u);
}

// ---------- ResultSet ----------

TEST(ResultSetTest, DeduplicateAndSort) {
  ResultSet rs({"c"});
  rs.AddRow({Value("b")});
  rs.AddRow({Value("a")});
  rs.AddRow({Value("b")});
  rs.Deduplicate();
  EXPECT_EQ(rs.num_rows(), 2u);
  rs.SortRows();
  EXPECT_EQ(rs.row(0)[0].AsString(), "a");
}

TEST(ResultSetTest, IntersectWith) {
  ResultSet a({"c"}), b({"c"});
  a.AddRow({Value("x")});
  a.AddRow({Value("y")});
  b.AddRow({Value("y")});
  a.IntersectWith(b.ToSet());
  EXPECT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.row(0)[0].AsString(), "y");
}

TEST(ResultSetTest, EncodeRowDistinguishesTypes) {
  // int 1 and string "1" must encode differently; int 1 and double 1.0
  // compare equal and must encode identically... they do not need to: the
  // encoding is type-tagged, and mixed-type result columns do not occur.
  std::string int_row = ResultSet::EncodeRow({Value(static_cast<int64_t>(1))});
  std::string str_row = ResultSet::EncodeRow({Value("1")});
  EXPECT_NE(int_row, str_row);
}

TEST(ResultSetTest, EncodeRowIsSeparatorCollisionFree) {
  // Under the old separator-based encoding, ("a\x1f" "3b", "c") and
  // ("a", "b\x1f" "3c") concatenated to the same bytes: a '\x1f' inside a
  // string plus the type tag '3' forged a value boundary. The
  // length-prefixed encoding keeps them distinct.
  const std::string tricky1 = std::string("a\x1f") + "3b";
  const std::string tricky2 = std::string("b\x1f") + "3c";
  std::vector<Value> row1 = {Value(tricky1), Value("c")};
  std::vector<Value> row2 = {Value("a"), Value(tricky2)};
  EXPECT_NE(ResultSet::EncodeRow(row1), ResultSet::EncodeRow(row2));
  // Same trick across arities: one value embedding a forged boundary vs two.
  std::vector<Value> one = {Value(std::string("a\x1f") + "3b")};
  std::vector<Value> two = {Value("a"), Value("b")};
  EXPECT_NE(ResultSet::EncodeRow(one), ResultSet::EncodeRow(two));
  // Equal rows still encode identically.
  EXPECT_EQ(ResultSet::EncodeRow(row1), ResultSet::EncodeRow(row1));
}

TEST(ResultSetTest, DeduplicateKeepsAdversarialRowsDistinct) {
  // Regression: Deduplicate/IntersectWith silently merged the rows above.
  ResultSet rs({"x", "y"});
  rs.AddRow({Value(std::string("a\x1f") + "3b"), Value("c")});
  rs.AddRow({Value("a"), Value(std::string("b\x1f") + "3c")});
  rs.Deduplicate();
  EXPECT_EQ(rs.num_rows(), 2u);

  ResultSet keep({"x", "y"});
  keep.AddRow({Value(std::string("a\x1f") + "3b"), Value("c")});
  ResultSet probe({"x", "y"});
  probe.AddRow({Value("a"), Value(std::string("b\x1f") + "3c")});
  probe.IntersectWith(keep.ToSet());
  EXPECT_EQ(probe.num_rows(), 0u);  // distinct rows must not intersect
}

TEST(ResultSetTest, ColumnValues) {
  ResultSet rs({"a", "b"});
  rs.AddRow({Value("x"), Value(static_cast<int64_t>(1))});
  rs.AddRow({Value("y"), Value(static_cast<int64_t>(2))});
  auto col1 = rs.ColumnValues(1);
  ASSERT_EQ(col1.size(), 2u);
  EXPECT_EQ(col1[1].AsInt64(), 2);
}

}  // namespace
}  // namespace squid
