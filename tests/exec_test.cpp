#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::MakeMoviesDb;
using testing::NameSet;
using testing::NamesOf;

Result<ResultSet> RunSql(const Database& db, const std::string& sql) {
  auto q = ParseQuery(sql);
  if (!q.ok()) return q.status();
  return ExecuteQuery(db, q.value());
}

TEST(ExecutorTest, ScanAndProject) {
  auto db = MakeAcademicsDb();
  auto rs = RunSql(*db, "SELECT a.name FROM academics a");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 6u);
}

TEST(ExecutorTest, SelectionPushdown) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.gender = 'Female'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Laura Holt"}));
}

TEST(ExecutorTest, NumericRangeSelection) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.age BETWEEN 50 AND 60");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 4u);  // 60, 52, 58, 50
}

TEST(ExecutorTest, PaperExample11Join) {
  // Q2 of Example 1.1: academics with interest 'data management'.
  auto db = MakeAcademicsDb();
  auto rs = RunSql(*db,
                "SELECT a.name FROM academics a, research r, interest i "
                "WHERE r.aid = a.id AND r.interest_id = i.id AND "
                "i.name = 'data management'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Dan Susic", "Joe Hellman", "Sam Madsen"}));
}

TEST(ExecutorTest, TwoHopJoin) {
  // Persons who appeared in a Comedy.
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db,
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m, "
                "movietogenre mg, genre g WHERE c.person_id = p.id AND "
                "c.movie_id = m.id AND mg.movie_id = m.id AND "
                "mg.genre_id = g.id AND g.name = 'Comedy'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Ewan McGregg", "Jim Carris",
                                      "Laura Holt"}));
}

TEST(ExecutorTest, DistinctDeduplicates) {
  auto db = MakeMoviesDb();
  // Without DISTINCT, Jim Carris appears once per comedy.
  auto dup = RunSql(*db,
                 "SELECT p.name FROM person p, castinfo c, movie m, "
                 "movietogenre mg, genre g WHERE c.person_id = p.id AND "
                 "c.movie_id = m.id AND mg.movie_id = m.id AND "
                 "mg.genre_id = g.id AND g.name = 'Comedy'");
  ASSERT_TRUE(dup.ok());
  EXPECT_GT(dup.value().num_rows(), 4u);
}

TEST(ExecutorTest, GroupByHavingCount) {
  // Persons with at least 3 comedy appearances (Fig. 5's Jim Carris).
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db,
                "SELECT p.name FROM person p, castinfo c, movietogenre mg, "
                "genre g WHERE c.person_id = p.id AND "
                "mg.movie_id = c.movie_id AND mg.genre_id = g.id AND "
                "g.name = 'Comedy' GROUP BY p.id HAVING count(*) >= 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()), (std::vector<std::string>{"Jim Carris"}));
}

TEST(ExecutorTest, HavingOperatorVariants) {
  auto db = MakeMoviesDb();
  // Exactly one comedy appearance: Laura and Emma.
  auto rs = RunSql(*db,
                "SELECT p.name FROM person p, castinfo c, movietogenre mg, "
                "genre g WHERE c.person_id = p.id AND "
                "mg.movie_id = c.movie_id AND mg.genre_id = g.id AND "
                "g.name = 'Comedy' GROUP BY p.id HAVING count(*) <= 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Emma Stone", "Laura Holt"}));
}

TEST(ExecutorTest, Intersection) {
  auto db = MakeMoviesDb();
  // Cast of 'Mighty Bruce' ∩ cast of 'Phillip's Letters' = Jim, Ewan.
  auto rs = RunSql(*db,
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                "m.title = 'Mighty Bruce' "
                "INTERSECT "
                "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                "m.title = 'Phillip''s Letters'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Ewan McGregg", "Jim Carris"}));
}

TEST(ExecutorTest, AntiJoinExcludesSelf) {
  auto db = MakeMoviesDb();
  // Co-actors of anyone: pairs (p, q) sharing a movie with p != q.
  auto with_self = RunSql(*db,
                       "SELECT p.name FROM person p, castinfo c1, castinfo c2, "
                       "person q WHERE c1.person_id = p.id AND "
                       "c2.movie_id = c1.movie_id AND c2.person_id = q.id");
  auto without_self = RunSql(*db,
                          "SELECT p.name FROM person p, castinfo c1, castinfo "
                          "c2, person q WHERE c1.person_id = p.id AND "
                          "c2.movie_id = c1.movie_id AND c2.person_id = q.id "
                          "AND q.id != p.id");
  ASSERT_TRUE(with_self.ok());
  ASSERT_TRUE(without_self.ok());
  EXPECT_LT(without_self.value().num_rows(), with_self.value().num_rows());
}

TEST(ExecutorTest, DisconnectedFromIsCartesian) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p, genre g");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 6u * 3u);
}

TEST(ExecutorTest, EmptyResultIsOk) {
  auto db = MakeMoviesDb();
  auto rs = RunSql(*db, "SELECT p.name FROM person p WHERE p.age > 200");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 0u);
}

TEST(ExecutorTest, UnknownTableErrors) {
  auto db = MakeMoviesDb();
  EXPECT_FALSE(RunSql(*db, "SELECT x.a FROM missing x").ok());
}

TEST(ExecutorTest, UnknownColumnErrors) {
  auto db = MakeMoviesDb();
  EXPECT_FALSE(RunSql(*db, "SELECT p.nope FROM person p").ok());
  EXPECT_FALSE(RunSql(*db, "SELECT p.name FROM person p WHERE p.nope = 1").ok());
}

TEST(ExecutorTest, JoinOnStringKeys) {
  // Build a tiny DB joined on string values.
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kString}}));
  auto b = db.CreateTable(
      Schema("b", {{"k", ValueType::kString}, {"v", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->AppendRow({Value("x")}).ok());
  ASSERT_TRUE(a.value()->AppendRow({Value("y")}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value("x"), Value(static_cast<int64_t>(1))}).ok());
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()), (std::vector<std::string>{"x"}));
}

TEST(ExecutorTest, NullJoinKeysNeverMatch) {
  Database db("d");
  auto a = db.CreateTable(Schema("a", {{"k", ValueType::kInt64}}));
  auto b = db.CreateTable(Schema("b", {{"k", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(b.value()->AppendRow({Value::Null()}).ok());
  auto rs = RunSql(db, "SELECT a.k FROM a a, b b WHERE a.k = b.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 0u);
}

TEST(ExecutorTest, MultiEdgeJoinAppliesAllConditions) {
  // Join on two attributes simultaneously.
  Database db("d");
  auto a = db.CreateTable(
      Schema("a", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  auto b = db.CreateTable(
      Schema("b", {{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto I = [](int64_t v) { return Value(v); };
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(1)}).ok());
  ASSERT_TRUE(a.value()->AppendRow({I(1), I(2)}).ok());
  ASSERT_TRUE(b.value()->AppendRow({I(1), I(1)}).ok());
  auto rs = RunSql(db, "SELECT a.x FROM a a, b b WHERE a.x = b.x AND a.y = b.y");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 1u);
}

// ---------- ResultSet ----------

TEST(ResultSetTest, DeduplicateAndSort) {
  ResultSet rs({"c"});
  rs.AddRow({Value("b")});
  rs.AddRow({Value("a")});
  rs.AddRow({Value("b")});
  rs.Deduplicate();
  EXPECT_EQ(rs.num_rows(), 2u);
  rs.SortRows();
  EXPECT_EQ(rs.row(0)[0].AsString(), "a");
}

TEST(ResultSetTest, IntersectWith) {
  ResultSet a({"c"}), b({"c"});
  a.AddRow({Value("x")});
  a.AddRow({Value("y")});
  b.AddRow({Value("y")});
  a.IntersectWith(b.ToSet());
  EXPECT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.row(0)[0].AsString(), "y");
}

TEST(ResultSetTest, EncodeRowDistinguishesTypes) {
  // int 1 and string "1" must encode differently; int 1 and double 1.0
  // compare equal and must encode identically... they do not need to: the
  // encoding is type-tagged, and mixed-type result columns do not occur.
  std::string int_row = ResultSet::EncodeRow({Value(static_cast<int64_t>(1))});
  std::string str_row = ResultSet::EncodeRow({Value("1")});
  EXPECT_NE(int_row, str_row);
}

TEST(ResultSetTest, ColumnValues) {
  ResultSet rs({"a", "b"});
  rs.AddRow({Value("x"), Value(static_cast<int64_t>(1))});
  rs.AddRow({Value("y"), Value(static_cast<int64_t>(2))});
  auto col1 = rs.ColumnValues(1);
  ASSERT_EQ(col1.size(), 2u);
  EXPECT_EQ(col1[1].AsInt64(), 2);
}

}  // namespace
}  // namespace squid
