#include <gtest/gtest.h>

#include "datagen/adult_generator.h"
#include "datagen/dblp_generator.h"
#include "datagen/imdb_generator.h"
#include "workloads/adult_queries.h"
#include "workloads/case_studies.h"
#include "workloads/dblp_queries.h"
#include "workloads/imdb_queries.h"

namespace squid {
namespace {

class WorkloadsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ImdbOptions imdb_options;
    imdb_options.scale = 0.2;
    auto imdb = GenerateImdb(imdb_options);
    ASSERT_TRUE(imdb.ok());
    imdb_ = new ImdbData(std::move(imdb).value());

    DblpOptions dblp_options;
    dblp_options.scale = 0.25;
    auto dblp = GenerateDblp(dblp_options);
    ASSERT_TRUE(dblp.ok());
    dblp_ = new DblpData(std::move(dblp).value());

    AdultOptions adult_options;
    adult_options.num_rows = 3000;
    auto adult = GenerateAdult(adult_options);
    ASSERT_TRUE(adult.ok());
    adult_ = adult.value().release();
  }
  static void TearDownTestSuite() {
    delete imdb_;
    delete dblp_;
    delete adult_;
  }
  static ImdbData* imdb_;
  static DblpData* dblp_;
  static Database* adult_;
};
ImdbData* WorkloadsFixture::imdb_ = nullptr;
DblpData* WorkloadsFixture::dblp_ = nullptr;
Database* WorkloadsFixture::adult_ = nullptr;

TEST_F(WorkloadsFixture, SixteenImdbQueries) {
  auto queries = ImdbBenchmarkQueries(imdb_->manifest);
  EXPECT_EQ(queries.size(), 16u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id, "IQ" + std::to_string(i + 1));
    EXPECT_FALSE(queries[i].description.empty());
    EXPECT_GT(queries[i].num_joins, 0u);
  }
}

TEST_F(WorkloadsFixture, ImdbGroundTruthsAreNonEmpty) {
  auto queries = ImdbBenchmarkQueries(imdb_->manifest);
  for (const auto& q : queries) {
    auto truth = GroundTruth(*imdb_->db, q);
    ASSERT_TRUE(truth.ok()) << q.id << ": " << truth.status().ToString();
    EXPECT_GT(truth.value().num_rows(), 0u) << q.id;
  }
}

TEST_F(WorkloadsFixture, ImdbPlantedCardinalities) {
  auto queries = ImdbBenchmarkQueries(imdb_->manifest);
  auto card = [&](const std::string& id) {
    const BenchmarkQuery* q = FindQuery(queries, id).value();
    return GroundTruth(*imdb_->db, *q).value().num_rows();
  };
  EXPECT_GE(card("IQ1"), 30u);   // hub cast
  EXPECT_GE(card("IQ2"), 15u);   // trilogy shared cast
  EXPECT_GE(card("IQ5"), 12u);   // co-star movies
  EXPECT_GE(card("IQ6"), 30u);   // directed movies
  EXPECT_GE(card("IQ9"), 5u);    // Indian actors in US movies
  EXPECT_GE(card("IQ12"), 20u);  // studio movies
}

TEST_F(WorkloadsFixture, FiveDblpQueries) {
  auto queries = DblpBenchmarkQueries(dblp_->manifest);
  EXPECT_EQ(queries.size(), 5u);
  for (const auto& q : queries) {
    auto truth = GroundTruth(*dblp_->db, q);
    ASSERT_TRUE(truth.ok()) << q.id << ": " << truth.status().ToString();
    EXPECT_GT(truth.value().num_rows(), 0u) << q.id;
  }
}

TEST_F(WorkloadsFixture, DblpIntersectionQueriesUseBranches) {
  auto queries = DblpBenchmarkQueries(dblp_->manifest);
  EXPECT_EQ(FindQuery(queries, "DQ1").value()->query.branches.size(), 2u);
  EXPECT_EQ(FindQuery(queries, "DQ2").value()->query.branches.size(), 2u);
  EXPECT_EQ(FindQuery(queries, "DQ4").value()->query.branches.size(), 3u);
}

TEST_F(WorkloadsFixture, TwentyAdultQueries) {
  auto queries = AdultBenchmarkQueries(*adult_);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_EQ(queries.value().size(), 20u);
  size_t prev = 0;
  for (const auto& q : queries.value()) {
    auto truth = GroundTruth(*adult_, q);
    ASSERT_TRUE(truth.ok());
    // Cardinalities within the Fig. 22 range, sorted ascending.
    EXPECT_GE(truth.value().num_rows(), 8u);
    EXPECT_LE(truth.value().num_rows(), 1500u);
    EXPECT_GE(truth.value().num_rows(), prev);
    prev = truth.value().num_rows();
    EXPECT_GE(q.num_selections, 2u);
  }
}

TEST_F(WorkloadsFixture, AdultQueriesAreDeterministic) {
  auto a = AdultBenchmarkQueries(*adult_, 7);
  auto b = AdultBenchmarkQueries(*adult_, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.value()[i].num_selections, b.value()[i].num_selections);
  }
}

TEST_F(WorkloadsFixture, FindQueryErrors) {
  auto queries = ImdbBenchmarkQueries(imdb_->manifest);
  EXPECT_TRUE(FindQuery(queries, "IQ3").ok());
  EXPECT_FALSE(FindQuery(queries, "IQ99").ok());
}

// ---------- Case studies ----------

TEST_F(WorkloadsFixture, FunnyActorsCaseStudy) {
  auto cs = FunnyActorsCaseStudy(*imdb_->db, imdb_->manifest);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs.value().entity_relation, "person");
  EXPECT_TRUE(cs.value().use_normalized_association);
  EXPECT_GT(cs.value().list.size(), 10u);
  for (const auto& name : cs.value().list) {
    EXPECT_TRUE(cs.value().popularity_mask.count(name)) << name;
  }
}

TEST_F(WorkloadsFixture, SciFiCaseStudy) {
  auto cs = SciFi2000sCaseStudy(*imdb_->db);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs.value().entity_relation, "movie");
  EXPECT_GT(cs.value().list.size(), 5u);
}

TEST_F(WorkloadsFixture, ProlificResearchersCaseStudy) {
  auto cs = ProlificResearchersCaseStudy(*dblp_->db, dblp_->manifest);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs.value().entity_relation, "author");
  EXPECT_GT(cs.value().list.size(), 5u);
  EXPECT_LE(cs.value().list.size(), 30u);
}

}  // namespace
}  // namespace squid
