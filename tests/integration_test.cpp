#include <gtest/gtest.h>

#include "baselines/talos.h"
#include "bench/bench_util.h"
#include "core/squid.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/sampler.h"
#include "exec/executor.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using bench::BuildImdbBench;
using bench::GroundTruthKeys;
using bench::ImdbBench;

/// One shared small-scale IMDb + αDB for the whole suite (expensive).
class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { bench_ = new ImdbBench(BuildImdbBench(0.2)); }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static ImdbBench* bench_;

  /// Runs discovery for `query_id` with `n` examples; returns metrics.
  static Metrics Discover(const std::string& query_id, size_t n,
                          SquidConfig config = {}, uint64_t seed = 77) {
    auto query = FindQuery(bench_->queries, query_id);
    EXPECT_TRUE(query.ok());
    auto truth = GroundTruth(*bench_->data.db, *query.value());
    EXPECT_TRUE(truth.ok());
    Rng rng(seed);
    auto examples = SampleExamples(truth.value(), n, &rng);
    auto outcome = RunDiscovery(*bench_->adb, config, examples,
                                ToStringSet(truth.value()));
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? outcome.value().metrics : Metrics{};
  }
};
ImdbBench* IntegrationFixture::bench_ = nullptr;

TEST_F(IntegrationFixture, HubMovieCastConverges) {
  // IQ1-style: with 10 examples the movie-identity filter pins the intent.
  Metrics m = Discover("IQ1", 10);
  EXPECT_GT(m.fscore, 0.6);
}

TEST_F(IntegrationFixture, TrilogyIntentUsesIntersection) {
  auto query = FindQuery(bench_->queries, "IQ2").value();
  auto truth = GroundTruth(*bench_->data.db, *query);
  ASSERT_TRUE(truth.ok());
  Rng rng(3);
  auto examples = SampleExamples(truth.value(), 8, &rng);
  Squid squid(bench_->adb.get());
  auto abduced = squid.Discover(examples);
  ASSERT_TRUE(abduced.ok());
  // The original-schema form must have one GROUP BY branch per trilogy part
  // (three INTERSECT branches), mirroring the paper's SPJA^I class.
  EXPECT_GE(abduced.value().original_query.branches.size(), 3u);
}

TEST_F(IntegrationFixture, CompoundIntentStaysOutOfScope) {
  // IQ10: the conjunction "many RECENT RUSSIAN movies" is outside the
  // search space; precision must suffer even with many examples (§7.3).
  Metrics m = Discover("IQ10", 12);
  EXPECT_LT(m.precision, 0.9);
  EXPECT_GT(m.recall, 0.5);
}

TEST_F(IntegrationFixture, ValidityInvariantAcrossQueries) {
  // Definition 2.1: E ⊆ Q(D) for the abduced query, on several intents.
  for (const char* id : {"IQ1", "IQ4", "IQ6", "IQ12", "IQ15"}) {
    auto query = FindQuery(bench_->queries, id).value();
    auto truth = GroundTruth(*bench_->data.db, *query);
    ASSERT_TRUE(truth.ok());
    Rng rng(11);
    auto examples = SampleExamples(truth.value(), 6, &rng);
    if (examples.size() < 2) continue;
    Squid squid(bench_->adb.get());
    auto abduced = squid.Discover(examples);
    ASSERT_TRUE(abduced.ok()) << id;
    auto rs = ExecuteQuery(bench_->adb->database(), abduced.value().adb_query);
    ASSERT_TRUE(rs.ok()) << id;
    auto out = ToStringSet(rs.value());
    for (const auto& e : examples) {
      EXPECT_TRUE(out.count(e)) << id << " lost example " << e;
    }
  }
}

TEST_F(IntegrationFixture, AdbAndOriginalFormsAgreeOnRealQueries) {
  for (const char* id : {"IQ4", "IQ6", "IQ13", "IQ15"}) {
    auto query = FindQuery(bench_->queries, id).value();
    auto truth = GroundTruth(*bench_->data.db, *query);
    ASSERT_TRUE(truth.ok());
    Rng rng(13);
    auto examples = SampleExamples(truth.value(), 8, &rng);
    if (examples.size() < 2) continue;
    Squid squid(bench_->adb.get());
    auto abduced = squid.Discover(examples);
    ASSERT_TRUE(abduced.ok()) << id;
    auto adb_rs = ExecuteQuery(bench_->adb->database(), abduced.value().adb_query);
    auto orig_rs = ExecuteQuery(*bench_->data.db, abduced.value().original_query);
    ASSERT_TRUE(adb_rs.ok()) << id;
    ASSERT_TRUE(orig_rs.ok()) << id << ": " << orig_rs.status().ToString();
    // The original-schema form INTERSECTs branches on the projected strings
    // (the paper's Q4/DQ2 shape); when two entities share a display string,
    // that intersection can admit strings the per-entity conjunction (the
    // αDB form) rejects. The αDB result is therefore a subset.
    auto adb_set = ToStringSet(adb_rs.value());
    auto orig_set = ToStringSet(orig_rs.value());
    for (const auto& s : adb_set) {
      EXPECT_TRUE(orig_set.count(s)) << id << " missing " << s;
    }
    EXPECT_LE(orig_set.size(), adb_set.size() + 3) << id;
  }
}

TEST_F(IntegrationFixture, QreModeReverseEngineersSelections) {
  // §7.5: full output + optimistic preset reverse engineers selection-based
  // intents (here IQ15, Japanese animation).
  auto query = FindQuery(bench_->queries, "IQ15").value();
  auto truth = GroundTruth(*bench_->data.db, *query);
  ASSERT_TRUE(truth.ok());
  std::vector<std::string> examples;
  for (const Value& v : truth.value().ColumnValues(0)) {
    examples.push_back(v.ToString());
  }
  Squid squid(bench_->adb.get(), SquidConfig::Optimistic());
  auto abduced = squid.Discover(examples);
  ASSERT_TRUE(abduced.ok());
  auto rs = ExecuteQuery(bench_->adb->database(), abduced.value().adb_query);
  ASSERT_TRUE(rs.ok());
  Metrics m = ComputeMetrics(ToStringSet(truth.value()), ToStringSet(rs.value()));
  EXPECT_GT(m.fscore, 0.9);
}

TEST_F(IntegrationFixture, SquidQueriesSmallerThanTalos) {
  // Fig. 15's headline: SQuID's abduced queries carry far fewer predicates.
  auto query = FindQuery(bench_->queries, "IQ15").value();
  auto truth = GroundTruth(*bench_->data.db, *query);
  ASSERT_TRUE(truth.ok());
  std::vector<std::string> examples;
  for (const Value& v : truth.value().ColumnValues(0)) {
    examples.push_back(v.ToString());
  }
  Squid squid(bench_->adb.get(), SquidConfig::Optimistic());
  auto abduced = squid.Discover(examples);
  ASSERT_TRUE(abduced.ok());

  auto keys = GroundTruthKeys(*bench_->data.db, *query);
  auto talos = RunTalos(*bench_->adb, "movie", keys);
  ASSERT_TRUE(talos.ok());
  EXPECT_LT(abduced.value().original_query.NumPredicates(),
            talos.value().num_predicates);
}

TEST_F(IntegrationFixture, AbductionIsDeterministic) {
  auto query = FindQuery(bench_->queries, "IQ13").value();
  auto truth = GroundTruth(*bench_->data.db, *query);
  ASSERT_TRUE(truth.ok());
  Rng rng(21);
  auto examples = SampleExamples(truth.value(), 6, &rng);
  Squid squid(bench_->adb.get());
  auto a = squid.Discover(examples);
  auto b = squid.Discover(examples);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToSql(a.value().original_query), ToSql(b.value().original_query));
  EXPECT_EQ(a.value().log_posterior, b.value().log_posterior);
}

TEST_F(IntegrationFixture, ParallelAdbBuildPreservesDiscoverOutput) {
  // The offline phase's determinism contract, end to end: an αDB built with
  // 8 threads must be indistinguishable from the serial build — identical
  // αDB relations, identical abduced queries, identical posteriors, and
  // identical result sets for the same examples.
  AdbOptions serial_options;
  serial_options.threads = 1;
  auto serial = AbductionReadyDb::Build(*bench_->data.db, serial_options);
  ASSERT_TRUE(serial.ok());
  AdbOptions parallel_options;
  parallel_options.threads = 8;
  auto parallel = AbductionReadyDb::Build(*bench_->data.db, parallel_options);
  ASSERT_TRUE(parallel.ok());

  testing::ExpectDatabasesIdentical(serial.value()->database(),
                                    parallel.value()->database());

  for (const char* id : {"IQ1", "IQ6", "IQ13", "IQ15"}) {
    auto query = FindQuery(bench_->queries, id).value();
    auto truth = GroundTruth(*bench_->data.db, *query);
    ASSERT_TRUE(truth.ok());
    Rng rng(51);
    auto examples = SampleExamples(truth.value(), 8, &rng);
    if (examples.size() < 2) continue;
    Squid squid_serial(serial.value().get());
    Squid squid_parallel(parallel.value().get());
    auto a = squid_serial.Discover(examples);
    auto b = squid_parallel.Discover(examples);
    ASSERT_TRUE(a.ok()) << id;
    ASSERT_TRUE(b.ok()) << id;
    EXPECT_EQ(ToSql(a.value().original_query), ToSql(b.value().original_query)) << id;
    EXPECT_EQ(ToSql(a.value().adb_query), ToSql(b.value().adb_query)) << id;
    EXPECT_EQ(a.value().log_posterior, b.value().log_posterior) << id;
    auto rs_a = ExecuteQuery(serial.value()->database(), a.value().adb_query);
    auto rs_b = ExecuteQuery(parallel.value()->database(), b.value().adb_query);
    ASSERT_TRUE(rs_a.ok()) << id;
    ASSERT_TRUE(rs_b.ok()) << id;
    EXPECT_EQ(ToStringSet(rs_a.value()), ToStringSet(rs_b.value())) << id;
  }
}

TEST_F(IntegrationFixture, ParallelAdbBuildPreservesAccuracyFigures) {
  // Fig. 10's protocol (AccuracyAtSize) must produce the same numbers on a
  // serial and a parallel αDB: same examples drawn, same metrics, bit for
  // bit.
  AdbOptions parallel_options;
  parallel_options.threads = 8;
  auto parallel = AbductionReadyDb::Build(*bench_->data.db, parallel_options);
  ASSERT_TRUE(parallel.ok());
  SquidConfig config;
  for (const char* id : {"IQ1", "IQ13"}) {
    auto query = FindQuery(bench_->queries, id).value();
    auto truth = GroundTruth(*bench_->data.db, *query);
    ASSERT_TRUE(truth.ok());
    for (size_t n : {5u, 10u}) {
      if (n > truth.value().num_rows()) break;
      auto serial_point =
          AccuracyAtSize(*bench_->adb, config, truth.value(), n, 2, 500 + n);
      auto parallel_point =
          AccuracyAtSize(*parallel.value(), config, truth.value(), n, 2, 500 + n);
      ASSERT_EQ(serial_point.ok(), parallel_point.ok()) << id;
      if (!serial_point.ok()) continue;
      EXPECT_EQ(serial_point.value().metrics.precision,
                parallel_point.value().metrics.precision)
          << id << " n=" << n;
      EXPECT_EQ(serial_point.value().metrics.recall,
                parallel_point.value().metrics.recall)
          << id << " n=" << n;
      EXPECT_EQ(serial_point.value().metrics.fscore,
                parallel_point.value().metrics.fscore)
          << id << " n=" << n;
    }
  }
}

TEST_F(IntegrationFixture, MoreExamplesNeverLoseValidity) {
  // Growing |E| keeps the abduced query valid and (typically) more precise.
  auto query = FindQuery(bench_->queries, "IQ6").value();
  auto truth = GroundTruth(*bench_->data.db, *query);
  ASSERT_TRUE(truth.ok());
  auto intended = ToStringSet(truth.value());
  double previous_precision = -1;
  for (size_t n : {4u, 12u, 24u}) {
    if (n > truth.value().num_rows()) break;
    Rng rng(31);
    auto examples = SampleExamples(truth.value(), n, &rng);
    auto outcome = RunDiscovery(*bench_->adb, SquidConfig{}, examples, intended);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GE(outcome.value().metrics.recall, 0.0);
    previous_precision = outcome.value().metrics.precision;
  }
  EXPECT_GE(previous_precision, 0.0);
}

}  // namespace
}  // namespace squid
