#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <tuple>

#include "common/strings.h"
#include "storage/column_index.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/inverted_index.h"
#include "tests/test_util.h"

namespace squid {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(static_cast<int64_t>(3)).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(static_cast<int64_t>(3)).AsInt64(), 3);
  EXPECT_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("x").AsString(), "x");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(static_cast<int64_t>(2)), Value(2.0));
  EXPECT_LT(Value(static_cast<int64_t>(2)).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(static_cast<int64_t>(3))), 0);
}

TEST(ValueTest, NumericCrossTypeHashAgreesWithEquality) {
  EXPECT_EQ(Value(static_cast<int64_t>(7)).Hash(), Value(7.0).Hash());
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value(static_cast<int64_t>(-100))), 0);
  EXPECT_LT(Value::Null().Compare(Value("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumbersSortBeforeStrings) {
  EXPECT_LT(Value(static_cast<int64_t>(999)).Compare(Value("a")), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(static_cast<int64_t>(42)).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, SqlLiteralQuotesAndEscapes) {
  EXPECT_EQ(Value("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value(static_cast<int64_t>(5)).ToSqlLiteral(), "5");
}

TEST(ValueTest, ToNumeric) {
  EXPECT_EQ(Value(static_cast<int64_t>(4)).ToNumeric().value(), 4.0);
  EXPECT_EQ(Value(4.5).ToNumeric().value(), 4.5);
  EXPECT_FALSE(Value("x").ToNumeric().ok());
  EXPECT_FALSE(Value::Null().ToNumeric().ok());
}

// ---------- Schema ----------

TEST(SchemaTest, AttributeLookup) {
  Schema s("t", {{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(*s.FindAttribute("b"), 1u);
  EXPECT_FALSE(s.FindAttribute("c").has_value());
  EXPECT_TRUE(s.AttributeIndex("a").ok());
  EXPECT_FALSE(s.AttributeIndex("z").ok());
}

TEST(SchemaTest, MetadataRoundTrip) {
  Schema s("t", {{"id", ValueType::kInt64}});
  s.set_primary_key("id");
  s.set_entity(true);
  s.AddPropertyAttribute("id");
  s.AddForeignKey({"id", "other", "id"});
  s.AddTextSearchAttribute("id");
  EXPECT_EQ(*s.primary_key(), "id");
  EXPECT_TRUE(s.is_entity());
  EXPECT_EQ(s.property_attributes().size(), 1u);
  EXPECT_EQ(s.foreign_keys().size(), 1u);
  EXPECT_EQ(s.text_search_attributes().size(), 1u);
}

// ---------- Table / Column ----------

TEST(TableTest, AppendAndReadBack) {
  Schema s("t", {{"i", ValueType::kInt64},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(1)), Value(2.5), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(t.ValueAt(0, 1).AsDouble(), 2.5);
  EXPECT_EQ(t.ValueAt(0, 2).AsString(), "x");
  EXPECT_TRUE(t.ValueAt(1, 0).is_null());
  EXPECT_TRUE(t.column(1).IsNull(1));
}

TEST(TableTest, IntWidensToDoubleColumn) {
  Schema s("t", {{"d", ValueType::kDouble}});
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(3))}).ok());
  EXPECT_EQ(t.ValueAt(0, 0).AsDouble(), 3.0);
}

TEST(TableTest, TypeMismatchRejected) {
  Schema s("t", {{"i", ValueType::kInt64}});
  Table t(s);
  EXPECT_FALSE(t.AppendRow({Value("nope")}).ok());
  EXPECT_FALSE(t.AppendRow({Value(1.5)}).ok());
}

TEST(TableTest, ArityMismatchRejected) {
  Schema s("t", {{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Table t(s);
  EXPECT_FALSE(t.AppendRow({Value(static_cast<int64_t>(1))}).ok());
}

TEST(TableTest, RowValuesMaterializesWholeRow) {
  Schema s("t", {{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(7)), Value("y")}).ok());
  auto row = t.RowValues(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].AsInt64(), 7);
  EXPECT_EQ(row[1].AsString(), "y");
}

TEST(TableTest, ColumnByNameErrors) {
  Schema s("t", {{"a", ValueType::kInt64}});
  Table t(s);
  EXPECT_TRUE(t.ColumnByName("a").ok());
  EXPECT_FALSE(t.ColumnByName("b").ok());
}

// ---------- Database ----------

TEST(DatabaseTest, AddGetDrop) {
  Database db("d");
  auto t = db.CreateTable(Schema("t", {{"a", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_TRUE(db.GetTable("t").ok());
  EXPECT_FALSE(db.GetTable("u").ok());
  EXPECT_FALSE(db.CreateTable(Schema("t", {{"a", ValueType::kInt64}})).ok());
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.DropTable("t").ok());
}

TEST(DatabaseTest, SharedTablesAliasBetweenDatabases) {
  Database a("a");
  auto t = a.CreateTable(Schema("t", {{"x", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()->AppendRow({Value(static_cast<int64_t>(1))}).ok());
  Database b("b");
  ASSERT_TRUE(b.AttachTable(a.GetShared("t").value()).ok());
  EXPECT_EQ(b.GetTable("t").value()->num_rows(), 1u);
  // Mutations through one handle are visible through the other.
  ASSERT_TRUE(t.value()->AppendRow({Value(static_cast<int64_t>(2))}).ok());
  EXPECT_EQ(b.GetTable("t").value()->num_rows(), 2u);
}

TEST(DatabaseTest, ForeignKeyValidationDetectsDangling) {
  auto db = testing::MakeAcademicsDb();
  EXPECT_TRUE(db->ValidateForeignKeys().ok());
  // Corrupt: a research row pointing at a missing academic.
  auto research = db->GetMutableTable("research");
  ASSERT_TRUE(research.ok());
  ASSERT_TRUE(research.value()
                  ->AppendRow({Value(static_cast<int64_t>(99)),
                               Value(static_cast<int64_t>(999)),
                               Value(static_cast<int64_t>(1))})
                  .ok());
  EXPECT_FALSE(db->ValidateForeignKeys().ok());
}

TEST(DatabaseTest, TotalsAndNames) {
  auto db = testing::MakeAcademicsDb();
  EXPECT_EQ(db->num_tables(), 3u);
  EXPECT_EQ(db->TableNames(),
            (std::vector<std::string>{"academics", "interest", "research"}));
  EXPECT_EQ(db->TotalRows(), 6u + 5u + 8u);
  EXPECT_GT(db->ApproxBytes(), 0u);
}

// ---------- Indexes ----------

TEST(SortedIndexTest, PointAndRangeLookups) {
  auto db = testing::MakeMoviesDb();
  const Table* movie = db->GetTable("movie").value();
  auto index = SortedColumnIndex::Build(*movie, "year");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().NumRows(), 6u);
  EXPECT_EQ(index.value().Lookup(Value(static_cast<int64_t>(2003))).size(), 1u);
  EXPECT_TRUE(index.value().Lookup(Value(static_cast<int64_t>(1900))).empty());
  // Range [1994, 2003]: 1994, 1996, 2001, 2003.
  auto rows = index.value().Range(Value(static_cast<int64_t>(1994)),
                                  Value(static_cast<int64_t>(2003)));
  EXPECT_EQ(rows.size(), 4u);
  // Unbounded range returns everything.
  EXPECT_EQ(index.value().Range(Value::Null(), Value::Null()).size(), 6u);
  EXPECT_EQ(index.value().MinValue().value().AsInt64(), 1994);
  EXPECT_EQ(index.value().MaxValue().value().AsInt64(), 2014);
}

TEST(SortedIndexTest, ExcludesNulls) {
  Schema s("t", {{"a", ValueType::kInt64}});
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(1))}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  auto index = SortedColumnIndex::Build(t, "a");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().NumRows(), 1u);
}

TEST(HashIndexTest, LookupPostings) {
  auto db = testing::MakeMoviesDb();
  const Table* cast = db->GetTable("castinfo").value();
  auto index = HashColumnIndex::Build(*cast, "person_id");
  ASSERT_TRUE(index.ok());
  const auto* rows = index.value().Lookup(Value(static_cast<int64_t>(2)));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 4u);  // Ewan appears in 4 movies
  EXPECT_EQ(index.value().Lookup(Value(static_cast<int64_t>(42))), nullptr);
}

// ---------- Inverted index ----------

TEST(InvertedIndexTest, CaseInsensitiveLookup) {
  auto db = testing::MakeAcademicsDb();
  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());
  auto postings = index.value().Lookup("dan susic");
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(index.value().RelationName(postings[0]), "academics");
  EXPECT_EQ(index.value().AttributeName(postings[0]), "name");
  EXPECT_EQ(index.value().Lookup("DAN SUSIC").size(), 1u);
  EXPECT_TRUE(index.value().Lookup("nobody").empty());
}

TEST(InvertedIndexTest, IndexesDeclaredTextAttributes) {
  auto db = testing::MakeAcademicsDb();
  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());
  // interest.name is declared text-searchable.
  auto postings = index.value().Lookup("data management");
  ASSERT_FALSE(postings.empty());
  EXPECT_EQ(index.value().RelationName(postings[0]), "interest");
}

/// Naive reference: scans every indexed column for case-insensitive
/// matches of `text` and returns (relation, attribute, row) triples.
std::multiset<std::tuple<std::string, std::string, size_t>> NaiveScan(
    const Database& db, std::string_view text) {
  std::multiset<std::tuple<std::string, std::string, size_t>> out;
  std::string probe = ToLower(std::string(text));
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name).value();
    std::vector<std::string> attrs = table->schema().text_search_attributes();
    if (attrs.empty() && table->schema().is_entity()) {
      for (const auto& a : table->schema().attributes()) {
        if (a.type == ValueType::kString) attrs.push_back(a.name);
      }
    }
    for (const std::string& attr : attrs) {
      const Column* col = table->ColumnByName(attr).value();
      if (col->type() != ValueType::kString) continue;
      for (size_t r = 0; r < col->size(); ++r) {
        if (col->IsNull(r)) continue;
        if (ToLower(col->StringAt(r)) == probe) out.emplace(name, attr, r);
      }
    }
  }
  return out;
}

TEST(InvertedIndexTest, CsrLookupMatchesNaiveScan) {
  auto db = testing::MakeAcademicsDb();
  // Exercise the edge keys the CSR build must keep distinct: the empty
  // string, a key with non-ASCII bytes (folding must only touch A-Z), and a
  // duplicate value spanning two relations.
  Table* academics = db->GetMutableTable("academics").value();
  ASSERT_TRUE(academics
                  ->AppendRow({Value(static_cast<int64_t>(100)), Value("")})
                  .ok());
  ASSERT_TRUE(academics
                  ->AppendRow({Value(static_cast<int64_t>(101)),
                               Value("Jalape\xc3\xb1o Pepper")})
                  .ok());
  ASSERT_TRUE(academics
                  ->AppendRow({Value(static_cast<int64_t>(102)),
                               Value("JALAPE\xc3\xb1O PEPPER")})
                  .ok());

  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());

  // Every value occurring in the data, plus mixed-case and missing probes.
  std::vector<std::string> probes;
  for (const std::string& name : db->TableNames()) {
    const Table* table = db->GetTable(name).value();
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const Column& col = table->column(c);
      if (col.type() != ValueType::kString) continue;
      for (size_t r = 0; r < col.size(); ++r) {
        if (!col.IsNull(r)) probes.emplace_back(col.StringAt(r));
      }
    }
  }
  probes.push_back("DAN susic");
  probes.push_back("jalape\xc3\xb1o pepper");
  probes.push_back("not in any table");
  probes.push_back("");

  size_t total_hits = 0;
  for (const std::string& probe : probes) {
    std::multiset<std::tuple<std::string, std::string, size_t>> got;
    for (const Posting& p : index.value().Lookup(probe)) {
      got.emplace(std::string(index.value().RelationName(p)),
                  std::string(index.value().AttributeName(p)), p.row);
    }
    EXPECT_EQ(got, NaiveScan(*db, probe)) << "probe '" << probe << "'";
    total_hits += got.size();
  }
  EXPECT_GT(total_hits, 0u);

  // The two Jalapeño spellings fold to one key (ASCII-only folding keeps
  // the UTF-8 bytes intact), so either spelling finds both rows.
  EXPECT_EQ(index.value().Lookup("jalape\xc3\xb1o PEPPER").size(), 2u);
  // A probe differing only in a non-ASCII byte is a different key.
  EXPECT_TRUE(index.value().Lookup("jalapeno pepper").empty());
}

TEST(InvertedIndexTest, PostingCountsSurviveCsrRebuild) {
  auto db = testing::MakeAcademicsDb();
  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());
  // Postings across all keys must cover exactly the non-null cells of the
  // indexed columns.
  size_t cells = 0;
  for (const std::string& name : db->TableNames()) {
    const Table* table = db->GetTable(name).value();
    std::vector<std::string> attrs = table->schema().text_search_attributes();
    if (attrs.empty() && table->schema().is_entity()) {
      for (const auto& a : table->schema().attributes()) {
        if (a.type == ValueType::kString) attrs.push_back(a.name);
      }
    }
    for (const std::string& attr : attrs) {
      const Column* col = table->ColumnByName(attr).value();
      for (size_t r = 0; r < col->size(); ++r) {
        if (!col->IsNull(r)) ++cells;
      }
    }
  }
  EXPECT_EQ(index.value().NumPostings(), cells);
  EXPECT_GT(index.value().NumKeys(), 0u);
  EXPECT_LE(index.value().NumKeys(), index.value().NumPostings());
}

// ---------- CSV ----------

TEST(CsvTest, ParseLineHandlesQuoting) {
  auto fields = ParseCsvLine("a,\"b,c\",\"d\"\"e\",");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields.value(),
            (std::vector<std::string>{"a", "b,c", "d\"e", ""}));
}

TEST(CsvTest, ParseLineRejectsMalformed) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(CsvTest, RoundTrip) {
  Schema s("t", {{"i", ValueType::kInt64},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
  Table t(s);
  ASSERT_TRUE(
      t.AppendRow({Value(static_cast<int64_t>(1)), Value(2.5), Value("a,b")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value("q\"x")}).ok());

  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(s, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 2u);
  EXPECT_EQ(loaded.value().ValueAt(0, 0).AsInt64(), 1);
  EXPECT_EQ(loaded.value().ValueAt(0, 2).AsString(), "a,b");
  EXPECT_TRUE(loaded.value().ValueAt(1, 0).is_null());
  EXPECT_EQ(loaded.value().ValueAt(1, 2).AsString(), "q\"x");
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedSeparatorsCrlfAndEmptyTrailingFields) {
  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_edge.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // CRLF line endings throughout; quoted separators and doubled quotes;
    // an empty trailing field (NULL) on the last row.
    fputs("name,note\r\n", f);
    fputs("\"Doe, Jane\",\"said \"\"hi\"\"\"\r\n", f);
    fputs("plain,\r\n", f);
    fclose(f);
  }
  Schema s("t", {{"name", ValueType::kString}, {"note", ValueType::kString}});
  auto loaded = ReadCsv(s, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_rows(), 2u);
  EXPECT_EQ(loaded.value().ValueAt(0, 0).AsString(), "Doe, Jane");
  EXPECT_EQ(loaded.value().ValueAt(0, 1).AsString(), "said \"hi\"");
  EXPECT_EQ(loaded.value().ValueAt(1, 0).AsString(), "plain");
  EXPECT_TRUE(loaded.value().ValueAt(1, 1).is_null());
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedEmbeddedNewlinesSpanPhysicalLines) {
  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_nl.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // One logical record per quoted field spanning two physical lines; the
    // second uses CRLF, whose embedded \r\n normalizes to \n on read.
    fputs("id,text\n", f);
    fputs("1,\"line one\nline two\"\n", f);
    fputs("2,\"a\r\nb\"\r\n", f);
    fclose(f);
  }
  Schema s("t", {{"id", ValueType::kInt64}, {"text", ValueType::kString}});
  auto loaded = ReadCsv(s, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_rows(), 2u);
  EXPECT_EQ(loaded.value().ValueAt(0, 1).AsString(), "line one\nline two");
  EXPECT_EQ(loaded.value().ValueAt(1, 1).AsString(), "a\nb");
  std::remove(path.c_str());
}

TEST(CsvTest, EmbeddedNewlineValuesRoundTripThroughWrite) {
  Schema s("t", {{"s", ValueType::kString}});
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("two\nlines")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("cr\rhere")}).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_nl_rt.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(s, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_rows(), 2u);
  EXPECT_EQ(loaded.value().ValueAt(0, 0).AsString(), "two\nlines");
  // A bare \r inside a quoted field only survives when it is not part of a
  // \r\n pair; WriteCsv quotes it, ReadCsv keeps it.
  EXPECT_EQ(loaded.value().ValueAt(1, 0).AsString(), "cr\rhere");
  std::remove(path.c_str());
}

TEST(CsvTest, UnterminatedQuoteAtEofIsCorruption) {
  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_eof.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("s\n\"never closed\n", f);
    fclose(f);
  }
  Schema s("t", {{"s", ValueType::kString}});
  auto loaded = ReadCsv(s, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadFromStringMatchesFileReadAndNamesSource) {
  Schema s("t", {{"i", ValueType::kInt64}, {"s", ValueType::kString}});
  const std::string data = "i,s\n1,\"a,b\"\n2,plain\n";
  auto from_string = ReadCsvFromString(s, data, "inline-blob");
  ASSERT_TRUE(from_string.ok()) << from_string.status().ToString();
  EXPECT_EQ(from_string.value().num_rows(), 2u);
  EXPECT_EQ(from_string.value().ValueAt(0, 1).AsString(), "a,b");

  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_str.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs(data.c_str(), f);
    fclose(f);
  }
  auto from_file = ReadCsv(s, path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_EQ(from_file.value().num_rows(), from_string.value().num_rows());
  for (size_t r = 0; r < from_file.value().num_rows(); ++r) {
    for (size_t c = 0; c < s.num_attributes(); ++c) {
      EXPECT_TRUE(from_file.value().ValueAt(r, c) ==
                  from_string.value().ValueAt(r, c));
    }
  }
  std::remove(path.c_str());

  // Errors cite the caller-supplied source label, not a file path.
  auto bad = ReadCsvFromString(s, "i,s\nnope,x\n", "inline-blob");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("inline-blob"), std::string::npos);
}

TEST(CsvTest, ReadRejectsBadNumbers) {
  std::string path =
      (std::filesystem::temp_directory_path() / "squid_csv_bad.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("i\nnot_a_number\n", f);
    fclose(f);
  }
  Schema s("t", {{"i", ValueType::kInt64}});
  EXPECT_FALSE(ReadCsv(s, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace squid
