#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace squid {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: relation 'x'");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::NotSupported("").code(),    Status::Corruption("").code(),
      Status::IoError("").code(),         Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  SQUID_ASSIGN_OR_RETURN(int half, HalveEven(v));
  SQUID_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterEven(8).value(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 3 is odd at the second step
  EXPECT_FALSE(QuarterEven(5).ok());
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleStaysInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(4);
  size_t low = 0, high = 0;
  const size_t n = 100;
  for (int i = 0; i < 20000; ++i) {
    size_t r = rng.Zipf(n, 1.1);
    ASSERT_LT(r, n);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);  // heavy head
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(5);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (size_t c : counts) {
    EXPECT_GT(c, 1500u);
    EXPECT_LT(c, 2500u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 20);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(sample.size(), 20u);
    EXPECT_EQ(distinct.size(), 20u);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(7);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 15);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(8);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  size_t mid = 0, last = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t pick = rng.WeightedIndex(weights);
    ASSERT_NE(pick, 0u);  // zero weight never picked
    if (pick == 1) ++mid;
    if (pick == 2) ++last;
  }
  EXPECT_GT(mid, last * 5);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ---------- strings ----------

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n a \r "), "a");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Comedy", "comedy"));
  EXPECT_FALSE(EqualsIgnoreCase("Comedy", "Comed"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch sw;
  double a = sw.ElapsedSeconds();
  double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

// ---------- ThreadPool task submission (serve mode substrate) ----------

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, PostRunsInlineOnSingleThreadPool) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Post([&] { ran = true; });
  EXPECT_TRUE(ran);  // serial pools run tasks synchronously
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Post([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForSharedCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 200;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  pool.ParallelForShared(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForSharedNestsInsidePoolTasks) {
  // A fan-out inside a pool task (serve mode: per-candidate work inside a
  // request task) must complete even when every worker is busy.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::future<void>> requests;
  for (int r = 0; r < 8; ++r) {
    requests.push_back(pool.Submit([&] {
      pool.ParallelForShared(16, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }));
  }
  for (auto& f : requests) f.get();
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ParallelForSharedSafeFromConcurrentCallers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.ParallelForShared(50, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 50);
}

TEST(ThreadPoolTest, ParallelForStillWorksAlongsideTasks) {
  // The offline-phase ParallelFor and the serve-mode task queue share
  // workers; interleaving them must not lose work.
  ThreadPool pool(4);
  std::atomic<int> tasks{0};
  for (int i = 0; i < 20; ++i) {
    pool.Post([&] { tasks.fetch_add(1, std::memory_order_relaxed); });
  }
  std::atomic<int> job{0};
  pool.ParallelFor(64, [&](size_t) { job.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(job.load(), 64);
  // Tasks drain by the time the pool winds down (checked in destructor test
  // above); here just wait for them.
  while (tasks.load() < 20) std::this_thread::yield();
  EXPECT_EQ(tasks.load(), 20);
}

}  // namespace
}  // namespace squid
