#include "storage/string_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "storage/inverted_index.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Global allocation counter (this test binary only): lets the tests assert
// that the inverted-index / pool lookup hit paths perform zero heap
// allocations, which is part of the CSR refactor's contract. Atomic because
// the concurrency stress tests allocate from several threads.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace squid {
namespace {

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  Symbol a = pool.Intern("alpha");
  Symbol b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Intern("beta"), b);
  EXPECT_EQ(pool.View(a), "alpha");
  EXPECT_EQ(pool.View(b), "beta");
}

TEST(StringPoolTest, FoldedIdsAgreeAcrossCasings) {
  StringPool pool;
  Symbol lower = pool.Intern("dan suciu");
  Symbol mixed = pool.Intern("Dan Suciu");
  Symbol upper = pool.Intern("DAN SUCIU");
  // Distinct exact spellings, one shared folded id.
  EXPECT_NE(mixed, upper);
  EXPECT_NE(mixed, lower);
  EXPECT_EQ(pool.FoldedOf(mixed), lower);
  EXPECT_EQ(pool.FoldedOf(upper), lower);
  EXPECT_EQ(pool.FoldedOf(lower), lower);  // folded form is its own fold
  // Case-insensitive lookup resolves any casing, including unseen ones.
  EXPECT_EQ(pool.FindFolded("dAn SuCiU"), lower);
  EXPECT_EQ(pool.FindFolded("DAN SUCIU"), lower);
  EXPECT_EQ(pool.FindFolded("dan suciu"), lower);
  EXPECT_EQ(pool.FindFolded("dan suciu "), kNoSymbol);
}

TEST(StringPoolTest, FindNeverInserts) {
  StringPool pool;
  EXPECT_EQ(pool.Find("ghost"), kNoSymbol);
  EXPECT_EQ(pool.FindFolded("ghost"), kNoSymbol);
  EXPECT_EQ(pool.size(), 0u);
  Symbol g = pool.Intern("ghost");
  EXPECT_EQ(pool.Find("ghost"), g);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, EmptyStringIsAnOrdinaryKey) {
  StringPool pool;
  Symbol empty = pool.Intern("");
  EXPECT_EQ(pool.View(empty), "");
  EXPECT_EQ(pool.FoldedOf(empty), empty);
  EXPECT_EQ(pool.Find(""), empty);
  EXPECT_EQ(pool.FindFolded(""), empty);
  EXPECT_EQ(pool.Intern(""), empty);
}

TEST(StringPoolTest, NonAsciiBytesPassThroughFolding) {
  StringPool pool;
  // UTF-8 "Jalapeño": folding only touches A-Z, so the ñ bytes survive and
  // the two casings share one folded id.
  Symbol a = pool.Intern("Jalape\xc3\xb1o");
  Symbol b = pool.Intern("JALAPE\xc3\xb1O");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.FoldedOf(a), pool.FoldedOf(b));
  EXPECT_EQ(pool.View(pool.FoldedOf(a)), "jalape\xc3\xb1o");
  // A string differing only in the non-ASCII byte folds elsewhere.
  EXPECT_EQ(pool.FindFolded("jalapeno"), kNoSymbol);
  EXPECT_EQ(pool.FindFolded("jalape\xc3\xb1O"), pool.FoldedOf(a));
}

TEST(StringPoolTest, ViewsStayStableAsThePoolGrows) {
  StringPool pool;
  // Force many arena blocks (64 KiB each) and record early views.
  std::vector<std::pair<Symbol, std::string>> expected;
  for (int i = 0; i < 20000; ++i) {
    std::string s = "entity-" + std::to_string(i) + "-with-some-padding";
    Symbol id = pool.Intern(s);
    if (i % 997 == 0) expected.emplace_back(id, s);
  }
  // An oversize string (> one block) takes the dedicated-storage path.
  std::string big(100000, 'x');
  Symbol big_id = pool.Intern(big);
  for (int i = 20000; i < 24000; ++i) {
    pool.Intern("more-growth-" + std::to_string(i));
  }
  for (const auto& [id, s] : expected) {
    EXPECT_EQ(pool.View(id), s);
  }
  EXPECT_EQ(pool.View(big_id), big);
  EXPECT_GT(pool.ApproxBytes(), size_t{100000});
}

TEST(StringPoolTest, FoldHashMatchesAcrossCasingsAndLengths) {
  // The SWAR fold hash must agree for case-insensitively equal strings of
  // every length mod 8 (covering the overlapping-last-word and short-tail
  // paths).
  const std::string base = "AbCdEfGhIjKlMnOpQrStU";
  for (size_t len = 0; len <= base.size(); ++len) {
    std::string upper = base.substr(0, len);
    std::string lower = upper;
    for (char& c : lower) c = StringPool::FoldChar(c);
    EXPECT_EQ(StringPool::FoldHashOf(upper), StringPool::FoldHashOf(lower))
        << "len " << len;
    EXPECT_TRUE(StringPool::FoldEqual(upper, lower)) << "len " << len;
    if (len > 0) {
      std::string other = lower;
      other[len / 2] = '#';
      EXPECT_FALSE(StringPool::FoldEqual(upper, other)) << "len " << len;
    }
  }
}

TEST(StringPoolTest, LookupHitPathDoesNotAllocate) {
  auto db = testing::MakeAcademicsDb();
  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());
  const StringPool& pool = *db->pool();

  // Mixed-case probes of values that are present (the hit path).
  const char* probes[] = {"DAN SUSIC", "dan susic", "Data Management"};
  // Warm up so lazy hash-map rehashing cannot be blamed on the probe.
  size_t hits = 0;
  for (const char* probe : probes) hits += index.value().Lookup(probe).size();
  ASSERT_GT(hits, 0u);

  size_t before = g_alloc_count.load();
  size_t total = 0;
  for (int round = 0; round < 100; ++round) {
    for (const char* probe : probes) {
      total += index.value().Lookup(probe).size();
      total += pool.FindFolded(probe) == kNoSymbol ? 0 : 1;
    }
  }
  EXPECT_EQ(g_alloc_count.load(), before) << "Lookup allocated on the hit path";
  EXPECT_EQ(total, 100 * (hits + 3));
}

// ---------------------------------------------------------------------------
// Concurrency: the sharded interner must hand out one symbol per distinct
// string no matter how many threads intern overlapping key sets, including
// case-folded collisions, the empty key, and non-ASCII keys. Run under
// -DSQUID_TSAN=ON in CI to catch data races, not just logic errors.
// ---------------------------------------------------------------------------

/// Deterministic key universe with deliberate overlaps: for each base index
/// three casings of the same word (folding collisions), plus empty and
/// non-ASCII keys sprinkled in.
std::vector<std::string> StressKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(4 * n + 2);
  keys.emplace_back("");
  keys.emplace_back("Jalape\xc3\xb1o");  // non-ASCII bytes survive folding
  for (size_t i = 0; i < n; ++i) {
    std::string base = "entity key " + std::to_string(i);
    keys.push_back(base);
    std::string upper = base;
    for (char& c : upper) c = static_cast<char>(c >= 'a' && c <= 'z' ? c & ~0x20 : c);
    keys.push_back(upper);
    std::string mixed = base;
    mixed[0] = static_cast<char>(mixed[0] & ~0x20);
    keys.push_back(mixed);
    keys.push_back("JALAPE\xc3\xb1O " + std::to_string(i % 7));
  }
  return keys;
}

TEST(StringPoolConcurrencyTest, OverlappingInternsAgreeAcrossThreads) {
  constexpr size_t kThreads = 8;
  const std::vector<std::string> keys = StressKeys(500);

  StringPool pool;
  // Per-thread observation: key index -> symbol. Threads walk the shared
  // key set from different offsets (and some backwards) so first-intern
  // races cover every interleaving class.
  std::vector<std::vector<Symbol>> seen(kThreads,
                                        std::vector<Symbol>(keys.size(), kNoSymbol));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t offset = t * keys.size() / kThreads;
      for (size_t i = 0; i < keys.size(); ++i) {
        size_t k = t % 2 == 0 ? (offset + i) % keys.size()
                              : (offset + keys.size() - i) % keys.size();
        Symbol sym = pool.Intern(keys[k]);
        seen[t][k] = sym;
        // Read-side calls interleaved with other threads' inserts.
        EXPECT_EQ(pool.View(sym), keys[k]);
        EXPECT_NE(pool.Find(keys[k]), kNoSymbol);
        EXPECT_NE(pool.FindFolded(keys[k]), kNoSymbol);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Idempotence and cross-thread agreement: every thread saw the same
  // symbol for the same key, and a fresh intern returns it again.
  for (size_t k = 0; k < keys.size(); ++k) {
    Symbol expected = seen[0][k];
    ASSERT_NE(expected, kNoSymbol);
    for (size_t t = 1; t < kThreads; ++t) {
      ASSERT_EQ(seen[t][k], expected) << "thread " << t << " key '" << keys[k] << "'";
    }
    EXPECT_EQ(pool.Intern(keys[k]), expected);
    EXPECT_EQ(pool.Find(keys[k]), expected);
    EXPECT_EQ(pool.View(expected), keys[k]);
  }

  // One entry per distinct string: n distinct exact spellings + their
  // folded twins and nothing else; count via a reference serial pool.
  StringPool reference;
  for (const std::string& k : keys) reference.Intern(k);
  EXPECT_EQ(pool.size(), reference.size());

  // Folded twins are shared across casings, concurrently interned or not.
  Symbol lower = pool.Find("entity key 0");
  Symbol upper = pool.Find("ENTITY KEY 0");
  Symbol mixed = pool.Find("Entity key 0");
  ASSERT_NE(lower, kNoSymbol);
  ASSERT_NE(upper, kNoSymbol);
  ASSERT_NE(mixed, kNoSymbol);
  EXPECT_EQ(pool.FoldedOf(upper), lower);
  EXPECT_EQ(pool.FoldedOf(mixed), lower);
  EXPECT_EQ(pool.FoldedOf(lower), lower);
  EXPECT_EQ(pool.FindFolded("eNtItY kEy 0"), lower);
}

TEST(StringPoolConcurrencyTest, ReadersRaceWritersSafely) {
  // Writers intern a growing key range while readers hammer Find /
  // FindFolded / View on already-published keys. Mostly a TSan target; the
  // logic assertions double as sanity checks.
  constexpr size_t kKeys = 4000;
  StringPool pool;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("Shared Key " + std::to_string(i));
  }
  std::atomic<size_t> published{0};
  std::thread writer([&] {
    for (size_t i = 0; i < kKeys; ++i) {
      Symbol sym = pool.Intern(keys[i]);
      EXPECT_EQ(pool.View(sym), keys[i]);
      published.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      size_t hits = 0;
      while (hits < kKeys) {
        size_t limit = published.load(std::memory_order_acquire);
        hits = 0;
        for (size_t i = 0; i < limit; ++i) {
          Symbol sym = pool.Find(keys[i]);
          ASSERT_NE(sym, kNoSymbol) << i;  // published => visible
          ASSERT_EQ(pool.View(sym), keys[i]);
          ASSERT_NE(pool.FindFolded(keys[i]), kNoSymbol);
          ++hits;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(pool.size(), 2 * kKeys);  // each key + its folded twin
}

/// The determinism contract: identical first-intern order => identical
/// symbols, regardless of what other strings other threads interned in
/// other pools. (Symbols are per-shard insertion indexes, so this is the
/// invariant the parallel αDB build and generators rely on.)
TEST(StringPoolConcurrencyTest, CanonicalInternOrderGivesCanonicalSymbols) {
  const std::vector<std::string> keys = StressKeys(200);
  StringPool a;
  StringPool b;
  for (const std::string& k : keys) {
    EXPECT_EQ(a.Intern(k), b.Intern(k)) << k;
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.IdBound(), b.IdBound());
}

}  // namespace
}  // namespace squid
