#include "storage/string_pool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "storage/inverted_index.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Global allocation counter (this test binary only): lets the tests assert
// that the inverted-index / pool lookup hit paths perform zero heap
// allocations, which is part of the CSR refactor's contract.
// ---------------------------------------------------------------------------

namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace squid {
namespace {

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  Symbol a = pool.Intern("alpha");
  Symbol b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Intern("beta"), b);
  EXPECT_EQ(pool.View(a), "alpha");
  EXPECT_EQ(pool.View(b), "beta");
}

TEST(StringPoolTest, FoldedIdsAgreeAcrossCasings) {
  StringPool pool;
  Symbol lower = pool.Intern("dan suciu");
  Symbol mixed = pool.Intern("Dan Suciu");
  Symbol upper = pool.Intern("DAN SUCIU");
  // Distinct exact spellings, one shared folded id.
  EXPECT_NE(mixed, upper);
  EXPECT_NE(mixed, lower);
  EXPECT_EQ(pool.FoldedOf(mixed), lower);
  EXPECT_EQ(pool.FoldedOf(upper), lower);
  EXPECT_EQ(pool.FoldedOf(lower), lower);  // folded form is its own fold
  // Case-insensitive lookup resolves any casing, including unseen ones.
  EXPECT_EQ(pool.FindFolded("dAn SuCiU"), lower);
  EXPECT_EQ(pool.FindFolded("DAN SUCIU"), lower);
  EXPECT_EQ(pool.FindFolded("dan suciu"), lower);
  EXPECT_EQ(pool.FindFolded("dan suciu "), kNoSymbol);
}

TEST(StringPoolTest, FindNeverInserts) {
  StringPool pool;
  EXPECT_EQ(pool.Find("ghost"), kNoSymbol);
  EXPECT_EQ(pool.FindFolded("ghost"), kNoSymbol);
  EXPECT_EQ(pool.size(), 0u);
  Symbol g = pool.Intern("ghost");
  EXPECT_EQ(pool.Find("ghost"), g);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, EmptyStringIsAnOrdinaryKey) {
  StringPool pool;
  Symbol empty = pool.Intern("");
  EXPECT_EQ(pool.View(empty), "");
  EXPECT_EQ(pool.FoldedOf(empty), empty);
  EXPECT_EQ(pool.Find(""), empty);
  EXPECT_EQ(pool.FindFolded(""), empty);
  EXPECT_EQ(pool.Intern(""), empty);
}

TEST(StringPoolTest, NonAsciiBytesPassThroughFolding) {
  StringPool pool;
  // UTF-8 "Jalapeño": folding only touches A-Z, so the ñ bytes survive and
  // the two casings share one folded id.
  Symbol a = pool.Intern("Jalape\xc3\xb1o");
  Symbol b = pool.Intern("JALAPE\xc3\xb1O");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.FoldedOf(a), pool.FoldedOf(b));
  EXPECT_EQ(pool.View(pool.FoldedOf(a)), "jalape\xc3\xb1o");
  // A string differing only in the non-ASCII byte folds elsewhere.
  EXPECT_EQ(pool.FindFolded("jalapeno"), kNoSymbol);
  EXPECT_EQ(pool.FindFolded("jalape\xc3\xb1O"), pool.FoldedOf(a));
}

TEST(StringPoolTest, ViewsStayStableAsThePoolGrows) {
  StringPool pool;
  // Force many arena blocks (64 KiB each) and record early views.
  std::vector<std::pair<Symbol, std::string>> expected;
  for (int i = 0; i < 20000; ++i) {
    std::string s = "entity-" + std::to_string(i) + "-with-some-padding";
    Symbol id = pool.Intern(s);
    if (i % 997 == 0) expected.emplace_back(id, s);
  }
  // An oversize string (> one block) takes the dedicated-storage path.
  std::string big(100000, 'x');
  Symbol big_id = pool.Intern(big);
  for (int i = 20000; i < 24000; ++i) {
    pool.Intern("more-growth-" + std::to_string(i));
  }
  for (const auto& [id, s] : expected) {
    EXPECT_EQ(pool.View(id), s);
  }
  EXPECT_EQ(pool.View(big_id), big);
  EXPECT_GT(pool.ApproxBytes(), size_t{100000});
}

TEST(StringPoolTest, FoldHashMatchesAcrossCasingsAndLengths) {
  // The SWAR fold hash must agree for case-insensitively equal strings of
  // every length mod 8 (covering the overlapping-last-word and short-tail
  // paths).
  const std::string base = "AbCdEfGhIjKlMnOpQrStU";
  for (size_t len = 0; len <= base.size(); ++len) {
    std::string upper = base.substr(0, len);
    std::string lower = upper;
    for (char& c : lower) c = StringPool::FoldChar(c);
    EXPECT_EQ(StringPool::FoldHashOf(upper), StringPool::FoldHashOf(lower))
        << "len " << len;
    EXPECT_TRUE(StringPool::FoldEqual(upper, lower)) << "len " << len;
    if (len > 0) {
      std::string other = lower;
      other[len / 2] = '#';
      EXPECT_FALSE(StringPool::FoldEqual(upper, other)) << "len " << len;
    }
  }
}

TEST(StringPoolTest, LookupHitPathDoesNotAllocate) {
  auto db = testing::MakeAcademicsDb();
  auto index = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(index.ok());
  const StringPool& pool = *db->pool();

  // Mixed-case probes of values that are present (the hit path).
  const char* probes[] = {"DAN SUSIC", "dan susic", "Data Management"};
  // Warm up so lazy hash-map rehashing cannot be blamed on the probe.
  size_t hits = 0;
  for (const char* probe : probes) hits += index.value().Lookup(probe).size();
  ASSERT_GT(hits, 0u);

  size_t before = g_alloc_count;
  size_t total = 0;
  for (int round = 0; round < 100; ++round) {
    for (const char* probe : probes) {
      total += index.value().Lookup(probe).size();
      total += pool.FindFolded(probe) == kNoSymbol ? 0 : 1;
    }
  }
  EXPECT_EQ(g_alloc_count, before) << "Lookup allocated on the hit path";
  EXPECT_EQ(total, 100 * (hits + 3));
}

}  // namespace
}  // namespace squid
