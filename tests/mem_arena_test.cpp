#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "common/mem_arena.h"
#include "common/probe_pipeline.h"
#include "core/squid.h"
#include "exec/executor.h"
#include "exec/group_table.h"
#include "exec/join_hash.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "storage/inverted_index.h"
#include "storage/string_pool.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::MakeMoviesDb;

// ---------- MemArena ----------

TEST(MemArenaTest, AlignmentGuarantees) {
  MemArena arena(1 << 16, HugepageMode::kOff);
  // Interleave odd sizes with every power-of-two alignment so the bump
  // pointer is rarely pre-aligned when the next request arrives.
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    for (size_t bytes : {1u, 3u, 7u, 65u, 1000u}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xAB, bytes);  // must be writable storage
    }
  }
  EXPECT_GT(arena.stats().used_bytes, 0u);
  EXPECT_GE(arena.stats().reserved_bytes, arena.stats().used_bytes);
}

TEST(MemArenaTest, ZeroByteAllocationIsValid) {
  MemArena arena(1 << 12, HugepageMode::kOff);
  void* p = arena.Allocate(0, 1);
  EXPECT_NE(p, nullptr);
}

TEST(MemArenaTest, OversizeRequestGetsDedicatedBlock) {
  constexpr size_t kBlock = 1 << 12;
  MemArena arena(kBlock, HugepageMode::kOff);
  arena.Allocate(64, 8);
  EXPECT_EQ(arena.stats().block_count, 1u);
  void* big = arena.Allocate(kBlock * 3, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, kBlock * 3);
  EXPECT_EQ(arena.stats().block_count, 2u);
  // The oversize block must not have consumed the small block's bump space:
  // a follow-up small allocation still fits without a third block.
  arena.Allocate(64, 8);
  EXPECT_EQ(arena.stats().block_count, 2u);
  EXPECT_GE(arena.stats().used_bytes, kBlock * 3 + 128);
}

TEST(MemArenaTest, PointersStayValidAcrossBlockGrowth) {
  MemArena arena(1 << 12, HugepageMode::kOff);
  std::vector<uint64_t*> cells;
  for (uint64_t i = 0; i < 4096; ++i) {
    auto* cell = static_cast<uint64_t*>(
        arena.Allocate(sizeof(uint64_t), alignof(uint64_t)));
    *cell = i;
    cells.push_back(cell);
  }
  EXPECT_GT(arena.stats().block_count, 1u);  // growth actually happened
  for (uint64_t i = 0; i < cells.size(); ++i) EXPECT_EQ(*cells[i], i);
}

TEST(MemArenaTest, EveryHugepageModeAllocatesWritableMemory) {
  // kExplicit must fall back gracefully on hosts with no hugetlb pool (the
  // common case in CI) — same for kTransparent on kernels ignoring the
  // madvise. The contract is: never a hard failure, only a weaker backing.
  for (HugepageMode mode : {HugepageMode::kOff, HugepageMode::kTransparent,
                            HugepageMode::kExplicit}) {
    MemArena arena(MemArena::kDefaultBlockBytes, mode);
    EXPECT_EQ(arena.mode(), mode);
    for (int i = 0; i < 4; ++i) {
      void* p = arena.Allocate(1 << 20, 64);
      ASSERT_NE(p, nullptr);
      std::memset(p, i, 1 << 20);
    }
    EXPECT_GE(arena.stats().used_bytes, 4u << 20);
    EXPECT_GE(arena.stats().reserved_bytes, arena.stats().used_bytes);
  }
}

TEST(MemArenaTest, ArenaVectorRoundTrips) {
  auto arena = std::make_shared<MemArena>(1 << 16, HugepageMode::kOff);
  ArenaVector<uint32_t> v{ArenaAllocator<uint32_t>(arena)};
  for (uint32_t i = 0; i < 10000; ++i) v.push_back(i * 3);
  for (uint32_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i * 3);
  EXPECT_GE(arena->stats().used_bytes, 10000 * sizeof(uint32_t));

  ArenaVector<uint32_t> moved = std::move(v);
  EXPECT_EQ(moved.size(), 10000u);
  EXPECT_EQ(moved[9999], 9999u * 3);
}

// ---------- MemConfig ----------

TEST(MemConfigTest, EnvParsing) {
  MemConfig saved = GlobalMemConfig();

  ::setenv("SQUID_HUGEPAGES", "off", 1);
  ::setenv("SQUID_PREFETCH_DISTANCE", "4", 1);
  ::setenv("SQUID_PREFETCH_WINDOW", "32", 1);
  ReloadMemConfigFromEnv();
  EXPECT_EQ(GlobalMemConfig().hugepages, HugepageMode::kOff);
  EXPECT_EQ(GlobalMemConfig().prefetch_distance, 4u);
  EXPECT_EQ(GlobalMemConfig().prefetch_window, 32u);

  ::setenv("SQUID_HUGEPAGES", "explicit", 1);
  ReloadMemConfigFromEnv();
  EXPECT_EQ(GlobalMemConfig().hugepages, HugepageMode::kExplicit);

  ::setenv("SQUID_HUGEPAGES", "1", 1);
  ReloadMemConfigFromEnv();
  EXPECT_EQ(GlobalMemConfig().hugepages, HugepageMode::kTransparent);

  ::unsetenv("SQUID_HUGEPAGES");
  ::unsetenv("SQUID_PREFETCH_DISTANCE");
  ::unsetenv("SQUID_PREFETCH_WINDOW");
  GlobalMemConfig() = saved;
}

// ---------- PipelinedProbe ----------

TEST(ProbePipelineTest, VisitsEveryIndexOnceInOrderForAllWindows) {
  for (size_t window : {size_t{0}, size_t{1}, size_t{2}, size_t{7},
                        size_t{16}, size_t{64}, size_t{1000}}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{100}}) {
      std::vector<size_t> computed;
      std::vector<size_t> resolved;
      PipelinedProbe<size_t>(
          n, window,
          [&](size_t j) {
            computed.push_back(j);
            return j * 10;
          },
          [&](size_t i, size_t carried) {
            EXPECT_EQ(carried, i * 10) << "window=" << window;
            resolved.push_back(i);
          });
      ASSERT_EQ(resolved.size(), n) << "window=" << window << " n=" << n;
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(resolved[i], i);
      // Each index is computed exactly once (no double hashing).
      std::vector<size_t> sorted = computed;
      std::sort(sorted.begin(), sorted.end());
      ASSERT_EQ(sorted.size(), n);
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
    }
  }
}

// ---------- StringPool on arenas ----------

TEST(StringPoolArenaTest, ConcurrentGrowthKeepsViewsStable) {
  StringPool pool;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<Symbol>> symbols(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &symbols, t] {
      // Heavy overlap across threads: every shard's arena grows while other
      // threads hold views into earlier blocks.
      for (int i = 0; i < kPerThread; ++i) {
        symbols[t].push_back(
            pool.Intern("value-" + std::to_string(i % (kPerThread / 2)) +
                        "-padpadpadpadpadpad"));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(pool.View(symbols[t][i]),
                "value-" + std::to_string(i % (kPerThread / 2)) +
                    "-padpadpadpadpadpad");
    }
  }
  MemArena::Stats stats = pool.ArenaStats();
  EXPECT_GT(stats.used_bytes, 0u);
  EXPECT_GE(stats.reserved_bytes, stats.used_bytes);
  EXPECT_GE(pool.ApproxBytes(), stats.used_bytes);
}

// ---------- Parity: results are bit-identical across MemConfig ----------

/// Runs the full Discover + executor pipeline under `mode` / `window` and
/// returns a byte-stable transcript of everything user-visible.
std::string PipelineTranscript(HugepageMode mode, size_t window) {
  MemConfig saved = GlobalMemConfig();
  GlobalMemConfig().hugepages = mode;
  GlobalMemConfig().prefetch_window = window;

  std::string out;
  {
    auto db = MakeAcademicsDb();
    auto adb = AbductionReadyDb::Build(*db);
    EXPECT_TRUE(adb.ok()) << adb.status().ToString();
    SquidConfig config;
    config.rho = 0.5;
    Squid squid(adb.value().get(), config);
    auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
    EXPECT_TRUE(abduced.ok()) << abduced.status().ToString();
    out += ToSql(abduced.value().original_query);
    auto rs = ExecuteQuery(adb.value()->database(), abduced.value().adb_query);
    EXPECT_TRUE(rs.ok());
    for (const auto& row : rs.value().rows()) out += ResultSet::EncodeRow(row);
  }
  {
    // Join + group-by + HAVING: exercises FlatJoinHash::ProbeBatch and
    // GroupKeyTable end to end.
    auto db = MakeMoviesDb();
    auto q = ParseQuery(
        "SELECT p.name FROM person p, castinfo c, movie m "
        "WHERE c.person_id = p.id AND c.movie_id = m.id "
        "GROUP BY p.id HAVING count(*) >= 2");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto rs = ExecuteQuery(*db, q.value());
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    for (const auto& row : rs.value().rows()) out += ResultSet::EncodeRow(row);
  }

  GlobalMemConfig() = saved;
  return out;
}

TEST(MemConfigParityTest, PipelineOutputIdenticalAcrossAllModes) {
  const std::string baseline =
      PipelineTranscript(HugepageMode::kOff, /*window=*/1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(PipelineTranscript(HugepageMode::kTransparent, 16), baseline);
  EXPECT_EQ(PipelineTranscript(HugepageMode::kExplicit, 64), baseline);
  EXPECT_EQ(PipelineTranscript(HugepageMode::kOff, 8), baseline);
}

/// Probe-level parity: every batched path agrees with its scalar twin for
/// every window setting.
TEST(MemConfigParityTest, BatchedProbesMatchScalarProbes) {
  MemConfig saved = GlobalMemConfig();

  Column col(ValueType::kInt64, nullptr);
  std::vector<uint32_t> rows;
  for (int64_t i = 0; i < 5000; ++i) {
    col.AppendInt64(i % 1000);  // multi-row keys
    rows.push_back(static_cast<uint32_t>(i));
  }
  FlatJoinHash hash = FlatJoinHash::Build(col, rows);

  std::vector<uint64_t> keys;
  std::vector<uint8_t> valid;
  for (uint64_t k = 0; k < 2000; ++k) {  // half the keys miss
    keys.push_back(k);
    valid.push_back(k % 7 == 0 ? 0 : 1);
  }
  std::vector<FlatJoinHash::RowSpan> out(keys.size());
  for (size_t window : {size_t{1}, size_t{2}, size_t{16}, size_t{64}}) {
    GlobalMemConfig().prefetch_window = window;
    hash.ProbeBatch(keys.data(), valid.data(), keys.size(), out.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!valid[i]) {
        EXPECT_TRUE(out[i].empty());
        continue;
      }
      FlatJoinHash::RowSpan scalar = hash.Probe(keys[i]);
      ASSERT_EQ(out[i].data, scalar.data) << "window=" << window;
      ASSERT_EQ(out[i].size, scalar.size) << "window=" << window;
    }
  }

  GlobalMemConfig() = saved;
}

TEST(MemConfigParityTest, IndexBatchLookupMatchesScalarLookup) {
  MemConfig saved = GlobalMemConfig();

  auto db = MakeMoviesDb();
  auto built = InvertedColumnIndex::Build(*db);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const InvertedColumnIndex& index = built.value();
  const StringPool& pool = index.pool();

  // Probe every symbol in the pool's id space (hits, misses, and unindexed
  // symbols alike), plus kNoSymbol.
  std::vector<Symbol> probes;
  for (Symbol s = 0; s < pool.IdBound(); ++s) probes.push_back(s);
  probes.push_back(kNoSymbol);
  std::vector<InvertedColumnIndex::PostingSpan> out(probes.size());
  for (size_t window : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    GlobalMemConfig().prefetch_window = window;
    index.LookupFoldedBatch(probes.data(), probes.size(), out.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      InvertedColumnIndex::PostingSpan scalar = index.LookupFolded(probes[i]);
      ASSERT_EQ(out[i].begin(), scalar.begin()) << "window=" << window;
      ASSERT_EQ(out[i].size(), scalar.size()) << "window=" << window;
    }
  }

  GlobalMemConfig() = saved;
}

TEST(MemConfigParityTest, GroupTableOrderIndependentOfWindow) {
  MemConfig saved = GlobalMemConfig();

  // Enough distinct keys to force several mid-batch rehashes.
  constexpr size_t kParts = 2;
  constexpr size_t kTuples = 10000;
  std::vector<uint64_t> packed(kTuples * kParts);
  for (size_t i = 0; i < kTuples; ++i) {
    packed[i * kParts] = 1;
    packed[i * kParts + 1] = (i * 2654435761u) % 4000;
  }

  auto run = [&](size_t window) {
    GlobalMemConfig().prefetch_window = window;
    GroupKeyTable table(kParts);
    for (size_t base = 0; base < kTuples; base += 1024) {
      const size_t n = std::min<size_t>(1024, kTuples - base);
      table.AddBatch(packed.data() + base * kParts, n,
                     static_cast<uint32_t>(base));
    }
    std::vector<GroupKeyTable::Group> groups(
        table.groups(), table.groups() + table.num_groups());
    return groups;
  };
  auto baseline = run(1);
  for (size_t window : {size_t{2}, size_t{16}, size_t{64}}) {
    auto got = run(window);
    ASSERT_EQ(got.size(), baseline.size()) << "window=" << window;
    for (size_t g = 0; g < got.size(); ++g) {
      EXPECT_EQ(got[g].hash, baseline[g].hash);
      EXPECT_EQ(got[g].first_tuple, baseline[g].first_tuple);
      EXPECT_EQ(got[g].count, baseline[g].count);
    }
  }

  GlobalMemConfig() = saved;
}

}  // namespace
}  // namespace squid
