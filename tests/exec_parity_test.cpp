// Golden-parity suite for the vectorized executor (exec/tuple_buffer.h +
// exec/join_hash.h): a faithful copy of the historical per-tuple pipeline —
// one heap-allocated row-id vector per intermediate tuple, a chaining
// std::unordered_map per join edge, an unordered_map<vector<uint64_t>,...>
// group-by — runs every IMDb/DBLP benchmark query plus abduced SPJAI
// queries (INTERSECT, group-by/HAVING, anti-joins) and the results must be
// byte-identical, row for row, to the production Executor. The two
// pipelines share only the packed-key helpers (PackCellKey/PackProbeKey/
// JoinCellsEqual) and the plan logic; everything vectorized is independent.

#include <gtest/gtest.h>

#include <unordered_map>

#include "bench/bench_util.h"
#include "core/squid.h"
#include "eval/sampler.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "exec/join_hash.h"
#include "sql/parser.h"

namespace squid {
namespace {

using bench::BuildDblpBench;
using bench::BuildImdbBench;
using bench::DblpBench;
using bench::ImdbBench;

/// FNV-1a over the packed group-key parts (the historical group-by hash).
struct GroupKeyHash {
  size_t operator()(const std::vector<uint64_t>& parts) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t p : parts) {
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (p >> shift) & 0xFF;
        h *= 1099511628211ULL;
      }
    }
    return static_cast<size_t>(h);
  }
};

/// The pre-vectorization select pipeline, per-tuple vectors and all. Plan
/// logic (start-alias choice, bind order, extra edges) matches the
/// production executor so output ordering is comparable byte-for-byte.
Result<ResultSet> ReferenceSelect(const Database& db, const SelectQuery& query) {
  if (query.from.empty()) return Status::InvalidArgument("empty FROM clause");
  const size_t num_aliases = query.from.size();

  std::vector<const Table*> tables(num_aliases);
  std::vector<std::vector<uint32_t>> rows(num_aliases);
  std::vector<bool> bound(num_aliases, false);
  std::vector<size_t> bound_order;
  std::vector<std::vector<uint32_t>> tuples;

  for (size_t i = 0; i < num_aliases; ++i) {
    SQUID_ASSIGN_OR_RETURN(const Table* table, db.GetTable(query.from[i].table_name));
    tables[i] = table;
    std::vector<BoundPredicate> preds;
    for (const auto& p : query.where) {
      if (p.column.table_alias != query.from[i].alias) continue;
      SQUID_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(*table, p));
      preds.push_back(std::move(bp));
    }
    rows[i] = FilterRows(*table, preds);
  }

  // Start alias: smallest filtered join-connected relation (global fallback).
  std::vector<bool> in_join(num_aliases, false);
  for (const auto& j : query.join_predicates) {
    size_t li = *query.FindAlias(j.left.table_alias);
    size_t ri = *query.FindAlias(j.right.table_alias);
    if (li == ri) continue;  // self-edge: a filter, not a connection
    in_join[li] = true;
    in_join[ri] = true;
  }
  size_t start = num_aliases;
  for (size_t i = 0; i < num_aliases; ++i) {
    if (!in_join[i]) continue;
    if (start == num_aliases || rows[i].size() < rows[start].size()) start = i;
  }
  if (start == num_aliases) {
    start = 0;
    for (size_t i = 1; i < num_aliases; ++i) {
      if (rows[i].size() < rows[start].size()) start = i;
    }
  }
  bound[start] = true;
  bound_order.push_back(start);
  tuples.reserve(rows[start].size());
  for (uint32_t r : rows[start]) tuples.push_back({r});

  size_t bound_count = 1;
  while (bound_count < num_aliases) {
    ssize_t pick = -1;
    bool pick_left_bound = false;
    size_t next_alias = 0;
    for (size_t jp = 0; jp < query.join_predicates.size(); ++jp) {
      const auto& j = query.join_predicates[jp];
      size_t li = *query.FindAlias(j.left.table_alias);
      size_t ri = *query.FindAlias(j.right.table_alias);
      if (bound[li] && !bound[ri]) {
        pick = static_cast<ssize_t>(jp);
        pick_left_bound = true;
        next_alias = ri;
        break;
      }
      if (!bound[li] && bound[ri]) {
        pick = static_cast<ssize_t>(jp);
        pick_left_bound = false;
        next_alias = li;
        break;
      }
    }
    if (pick < 0) {
      for (size_t i = 0; i < num_aliases; ++i) {
        if (!bound[i]) {
          next_alias = i;
          break;
        }
      }
      std::vector<std::vector<uint32_t>> expanded;
      expanded.reserve(tuples.size() * rows[next_alias].size());
      for (const auto& t : tuples) {
        for (uint32_t r : rows[next_alias]) {
          auto nt = t;
          nt.push_back(r);
          expanded.push_back(std::move(nt));
        }
      }
      tuples = std::move(expanded);
      bound[next_alias] = true;
      bound_order.push_back(next_alias);
      ++bound_count;
      continue;
    }

    const auto& j = query.join_predicates[pick];
    const ColumnRef& bound_col = pick_left_bound ? j.left : j.right;
    const ColumnRef& new_col = pick_left_bound ? j.right : j.left;
    size_t bound_alias = *query.FindAlias(bound_col.table_alias);

    SQUID_ASSIGN_OR_RETURN(const Column* new_column,
                           tables[next_alias]->ColumnByName(new_col.attribute));
    std::unordered_map<uint64_t, std::vector<uint32_t>> hash;
    hash.reserve(rows[next_alias].size());
    uint64_t build_key = 0;
    for (uint32_t r : rows[next_alias]) {
      if (PackCellKey(*new_column, r, &build_key)) hash[build_key].push_back(r);
    }

    size_t bound_pos = 0;
    for (size_t i = 0; i < bound_order.size(); ++i) {
      if (bound_order[i] == bound_alias) {
        bound_pos = i;
        break;
      }
    }
    SQUID_ASSIGN_OR_RETURN(const Column* bound_column,
                           tables[bound_alias]->ColumnByName(bound_col.attribute));

    struct ExtraEdge {
      size_t tuple_pos;
      const Column* bound_column;
      const Column* new_column;
    };
    std::vector<ExtraEdge> extras;
    for (size_t jp = 0; jp < query.join_predicates.size(); ++jp) {
      if (jp == static_cast<size_t>(pick)) continue;
      const auto& e = query.join_predicates[jp];
      size_t li = *query.FindAlias(e.left.table_alias);
      size_t ri = *query.FindAlias(e.right.table_alias);
      const ColumnRef* bside = nullptr;
      const ColumnRef* nside = nullptr;
      if (li == next_alias && bound[ri]) {
        nside = &e.left;
        bside = &e.right;
      } else if (ri == next_alias && bound[li]) {
        nside = &e.right;
        bside = &e.left;
      } else {
        continue;
      }
      size_t balias = *query.FindAlias(bside->table_alias);
      size_t bpos = 0;
      for (size_t i = 0; i < bound_order.size(); ++i) {
        if (bound_order[i] == balias) {
          bpos = i;
          break;
        }
      }
      SQUID_ASSIGN_OR_RETURN(const Column* bcol,
                             tables[balias]->ColumnByName(bside->attribute));
      SQUID_ASSIGN_OR_RETURN(const Column* ncol,
                             tables[next_alias]->ColumnByName(nside->attribute));
      extras.push_back(ExtraEdge{bpos, bcol, ncol});
    }

    std::vector<std::vector<uint32_t>> joined;
    uint64_t probe_key = 0;
    for (const auto& t : tuples) {
      if (!PackProbeKey(*new_column, *bound_column, t[bound_pos], &probe_key)) continue;
      auto it = hash.find(probe_key);
      if (it == hash.end()) continue;
      for (uint32_t nr : it->second) {
        bool ok = true;
        for (const auto& ex : extras) {
          if (!JoinCellsEqual(*ex.bound_column, t[ex.tuple_pos], *ex.new_column, nr)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        auto nt = t;
        nt.push_back(nr);
        joined.push_back(std::move(nt));
      }
    }
    tuples = std::move(joined);
    bound[next_alias] = true;
    bound_order.push_back(next_alias);
    ++bound_count;
  }

  std::vector<size_t> alias_pos(num_aliases, 0);
  for (size_t i = 0; i < bound_order.size(); ++i) alias_pos[bound_order[i]] = i;

  // Same-alias equality edges are post-join filters (mirrors the executor).
  for (const auto& j : query.join_predicates) {
    size_t li = *query.FindAlias(j.left.table_alias);
    size_t ri = *query.FindAlias(j.right.table_alias);
    if (li != ri) continue;
    SQUID_ASSIGN_OR_RETURN(const Column* lcol,
                           tables[li]->ColumnByName(j.left.attribute));
    SQUID_ASSIGN_OR_RETURN(const Column* rcol,
                           tables[ri]->ColumnByName(j.right.attribute));
    size_t pos = alias_pos[li];
    std::vector<std::vector<uint32_t>> kept;
    kept.reserve(tuples.size());
    for (auto& t : tuples) {
      if (JoinCellsEqual(*lcol, t[pos], *rcol, t[pos])) kept.push_back(std::move(t));
    }
    tuples = std::move(kept);
  }

  for (const auto& aj : query.anti_join_predicates) {
    auto li = query.FindAlias(aj.left.table_alias);
    auto ri = query.FindAlias(aj.right.table_alias);
    if (!li || !ri) return Status::InvalidArgument("anti-join references unknown alias");
    SQUID_ASSIGN_OR_RETURN(const Column* lcol,
                           tables[*li]->ColumnByName(aj.left.attribute));
    SQUID_ASSIGN_OR_RETURN(const Column* rcol,
                           tables[*ri]->ColumnByName(aj.right.attribute));
    size_t lpos = alias_pos[*li], rpos = alias_pos[*ri];
    std::vector<std::vector<uint32_t>> kept;
    kept.reserve(tuples.size());
    for (auto& t : tuples) {
      if (!lcol->IsNull(t[lpos]) && !rcol->IsNull(t[rpos]) &&
          !JoinCellsEqual(*lcol, t[lpos], *rcol, t[rpos])) {
        kept.push_back(std::move(t));
      }
    }
    tuples = std::move(kept);
  }

  auto column_of = [&](const ColumnRef& ref) -> Result<std::pair<const Column*, size_t>> {
    auto alias_idx = query.FindAlias(ref.table_alias);
    if (!alias_idx) return Status::InvalidArgument("unknown alias '" + ref.table_alias + "'");
    SQUID_ASSIGN_OR_RETURN(const Column* col,
                           tables[*alias_idx]->ColumnByName(ref.attribute));
    return std::make_pair(col, alias_pos[*alias_idx]);
  };

  std::vector<std::string> names;
  names.reserve(query.select_list.size());
  for (const auto& item : query.select_list) names.push_back(item.column.ToString());
  ResultSet result(std::move(names));

  std::vector<std::pair<const Column*, size_t>> projections;
  for (const auto& item : query.select_list) {
    SQUID_ASSIGN_OR_RETURN(auto proj, column_of(item.column));
    projections.push_back(proj);
  }

  if (query.group_by.empty() && !query.having) {
    for (const auto& t : tuples) {
      std::vector<Value> row;
      row.reserve(projections.size());
      for (const auto& [col, pos] : projections) row.push_back(col->ValueAt(t[pos]));
      result.AddRow(std::move(row));
    }
  } else {
    std::vector<std::pair<const Column*, size_t>> keys;
    for (const auto& g : query.group_by) {
      SQUID_ASSIGN_OR_RETURN(auto key, column_of(g));
      keys.push_back(key);
    }
    struct Group {
      size_t count = 0;
      std::vector<uint32_t> first_tuple;
    };
    std::unordered_map<std::vector<uint64_t>, Group, GroupKeyHash> groups;
    std::vector<uint64_t> key_parts;
    for (const auto& t : tuples) {
      key_parts.clear();
      key_parts.reserve(keys.size() * 2);
      for (const auto& [col, pos] : keys) {
        uint64_t packed = 0;
        bool valid = PackCellKey(*col, t[pos], &packed);
        key_parts.push_back(valid ? 1 : 0);
        key_parts.push_back(valid ? packed : 0);
      }
      auto [it, inserted] = groups.try_emplace(key_parts);
      if (inserted) it->second.first_tuple = t;
      ++it->second.count;
    }
    for (const auto& [_, g] : groups) {
      if (query.having) {
        Value count_val(static_cast<int64_t>(g.count));
        Value target(query.having->value);
        if (!EvalCompare(count_val, query.having->op, target)) continue;
      }
      std::vector<Value> row;
      row.reserve(projections.size());
      for (const auto& [col, pos] : projections) {
        row.push_back(col->ValueAt(g.first_tuple[pos]));
      }
      result.AddRow(std::move(row));
    }
    result.SortRows();
  }

  if (query.distinct) result.Deduplicate();
  return result;
}

Result<ResultSet> ReferenceExecute(const Database& db, const Query& query) {
  if (query.branches.empty()) return Status::InvalidArgument("query with no branches");
  SQUID_ASSIGN_OR_RETURN(ResultSet out, ReferenceSelect(db, query.branches[0]));
  if (query.branches.size() > 1) {
    out.Deduplicate();
    for (size_t i = 1; i < query.branches.size(); ++i) {
      SQUID_ASSIGN_OR_RETURN(ResultSet other, ReferenceSelect(db, query.branches[i]));
      out.IntersectWith(other.ToSet());
    }
  }
  return out;
}

/// Byte-identical comparison: column names, row count, and every row's
/// encoded bytes, in order.
void ExpectByteIdentical(const ResultSet& expected, const ResultSet& actual,
                         const std::string& label) {
  ASSERT_EQ(expected.column_names(), actual.column_names()) << label;
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << label;
  for (size_t i = 0; i < expected.num_rows(); ++i) {
    ASSERT_EQ(ResultSet::EncodeRow(expected.row(i)),
              ResultSet::EncodeRow(actual.row(i)))
        << label << " row " << i;
  }
}

/// Shape counters: the suite must actually exercise INTERSECT, group-by /
/// HAVING, and anti-joins or the parity claim is hollow.
struct Coverage {
  size_t intersect = 0;
  size_t group_by = 0;
  size_t anti_join = 0;

  void Count(const Query& q) {
    if (q.branches.size() > 1) ++intersect;
    for (const auto& b : q.branches) {
      if (!b.group_by.empty() || b.having) ++group_by;
      if (!b.anti_join_predicates.empty()) ++anti_join;
    }
  }
};

void ExpectParityOverQueries(const Database& db,
                             const std::vector<BenchmarkQuery>& queries,
                             Coverage* coverage) {
  for (const auto& bq : queries) {
    auto expected = ReferenceExecute(db, bq.query);
    auto actual = ExecuteQuery(db, bq.query);
    ASSERT_EQ(expected.ok(), actual.ok()) << bq.id;
    if (!expected.ok()) continue;
    coverage->Count(bq.query);
    ExpectByteIdentical(expected.value(), actual.value(), bq.id);
  }
}

/// Abduced-query parity: discover from sampled examples, then execute both
/// abduced forms (αDB SPJ and original-schema SPJAI with INTERSECT/HAVING)
/// through both pipelines.
void ExpectAbducedParity(const ImdbBench& bench, const BenchmarkQuery& bq,
                         Coverage* coverage) {
  auto truth = GroundTruth(*bench.data.db, bq);
  ASSERT_TRUE(truth.ok()) << bq.id;
  Rng rng(42);
  auto examples = SampleExamples(truth.value(), 10, &rng);
  if (examples.size() < 2) return;
  Squid squid(bench.adb.get());
  auto abduced = squid.Discover(examples);
  if (!abduced.ok()) return;

  coverage->Count(abduced.value().adb_query);
  auto adb_expected = ReferenceExecute(bench.adb->database(), abduced.value().adb_query);
  auto adb_actual = ExecuteQuery(bench.adb->database(), abduced.value().adb_query);
  ASSERT_EQ(adb_expected.ok(), adb_actual.ok()) << bq.id << " adb form";
  if (adb_expected.ok()) {
    ExpectByteIdentical(adb_expected.value(), adb_actual.value(), bq.id + " adb form");
  }

  coverage->Count(abduced.value().original_query);
  auto orig_expected = ReferenceExecute(*bench.data.db, abduced.value().original_query);
  auto orig_actual = ExecuteQuery(*bench.data.db, abduced.value().original_query);
  ASSERT_EQ(orig_expected.ok(), orig_actual.ok()) << bq.id << " original form";
  if (orig_expected.ok()) {
    ExpectByteIdentical(orig_expected.value(), orig_actual.value(),
                        bq.id + " original form");
  }
}

class ExecParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    imdb_ = new ImdbBench(BuildImdbBench(0.12));
    dblp_ = new DblpBench(BuildDblpBench(0.2));
  }
  static void TearDownTestSuite() {
    delete imdb_;
    delete dblp_;
    imdb_ = nullptr;
    dblp_ = nullptr;
  }
  static ImdbBench* imdb_;
  static DblpBench* dblp_;
};
ImdbBench* ExecParityTest::imdb_ = nullptr;
DblpBench* ExecParityTest::dblp_ = nullptr;

TEST_F(ExecParityTest, ImdbBenchmarkQueries) {
  Coverage coverage;
  ExpectParityOverQueries(*imdb_->data.db, imdb_->queries, &coverage);
  EXPECT_GT(coverage.group_by, 0u);  // the IMDb workload has HAVING queries
}

TEST_F(ExecParityTest, DblpBenchmarkQueries) {
  Coverage coverage;
  ExpectParityOverQueries(*dblp_->data.db, dblp_->queries, &coverage);
}

TEST_F(ExecParityTest, AbducedQueriesBothForms) {
  Coverage coverage;
  for (const auto& bq : imdb_->queries) {
    ExpectAbducedParity(*imdb_, bq, &coverage);
  }
  // Abduced SPJAI queries are where INTERSECT and HAVING branches live.
  EXPECT_GT(coverage.intersect + coverage.group_by, 0u);
}

TEST_F(ExecParityTest, HandWrittenIntersectAntiJoinGroupBy) {
  // Deterministic INTERSECT / anti-join / group-by shapes over the IMDb
  // base schema, independent of what discovery happens to abduce.
  const char* sqls[] = {
      // INTERSECT of two SPJ blocks.
      "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
      "WHERE c.person_id = p.id AND c.movie_id = m.id AND m.year >= 2000 "
      "INTERSECT "
      "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
      "WHERE c.person_id = p.id AND c.movie_id = m.id AND m.year <= 2005",
      // Anti-join: co-actor pairs excluding self-pairs.
      "SELECT p.name FROM person p, castinfo c1, castinfo c2, person q "
      "WHERE c1.person_id = p.id AND c2.movie_id = c1.movie_id AND "
      "c2.person_id = q.id AND q.id != p.id",
      // Group-by with HAVING over a join.
      "SELECT p.name FROM person p, castinfo c WHERE c.person_id = p.id "
      "GROUP BY p.id HAVING count(*) >= 3",
      // Cartesian alongside a join (disconnected FROM entry).
      "SELECT p.name FROM person p, castinfo c, genre g "
      "WHERE c.person_id = p.id",
      // Same-alias equality edge: a post-join filter, not a join.
      "SELECT c.movie_id FROM castinfo c, person p "
      "WHERE c.person_id = p.id AND c.movie_id = c.person_id",
  };
  Coverage coverage;
  for (const char* sql : sqls) {
    auto query = ParseQuery(sql);
    ASSERT_TRUE(query.ok()) << sql;
    coverage.Count(query.value());
    auto expected = ReferenceExecute(*imdb_->data.db, query.value());
    auto actual = ExecuteQuery(*imdb_->data.db, query.value());
    ASSERT_EQ(expected.ok(), actual.ok()) << sql;
    if (!expected.ok()) continue;
    ExpectByteIdentical(expected.value(), actual.value(), sql);
  }
  EXPECT_EQ(coverage.intersect, 1u);
  EXPECT_EQ(coverage.anti_join, 1u);
  EXPECT_EQ(coverage.group_by, 1u);
}

}  // namespace
}  // namespace squid
