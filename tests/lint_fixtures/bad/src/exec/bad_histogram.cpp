// Known-bad fixture for scripts/check_invariants.py (histogram-math):
// re-deriving log-linear bucket boundaries outside src/obs/. Never
// compiled.
#include <cstddef>
#include <cstdint>

namespace squid {

size_t BadBucketMath(uint64_t v) {
  return BucketIndex(v) + static_cast<size_t>(kSubBuckets);
}

}  // namespace squid
