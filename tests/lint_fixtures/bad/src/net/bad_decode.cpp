// Known-bad fixture for scripts/check_invariants.py (raw-decode): casting
// and copying out of a payload buffer without going through WireReader and
// without a `// lint: raw-ok (...)` justification. Never compiled.
#include <cstdint>
#include <cstring>
#include <string>

namespace squid {
namespace net {

uint32_t BadDecode(const std::string& payload) {
  uint32_t v = 0;
  std::memcpy(&v, payload.data(), sizeof(v));
  const auto* words = reinterpret_cast<const uint64_t*>(payload.data());
  return v + static_cast<uint32_t>(words[0]);
}

}  // namespace net
}  // namespace squid
