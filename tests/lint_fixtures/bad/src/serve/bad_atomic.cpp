// Known-bad fixture for scripts/check_invariants.py (atomic-rationale):
// relaxed and CAS atomics with no rationale comment at the operation or the
// declaration. Never compiled.
#include <atomic>
#include <cstdint>

namespace squid {

std::atomic<uint64_t> g_undocumented{0};

void BadBump() {
  g_undocumented.fetch_add(1, std::memory_order_relaxed);
}

bool BadCas(std::atomic<uint64_t>& slot, uint64_t want) {
  uint64_t prev = 0;

  return slot.compare_exchange_strong(prev, want);
}

}  // namespace squid
