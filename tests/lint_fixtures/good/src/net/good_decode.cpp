// Known-good fixture for scripts/check_invariants.py: every construct the
// rules police, in its sanctioned form. Never compiled.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

namespace squid {
namespace net {

// relaxed: standalone stats counter, nothing synchronizes on it.
std::atomic<uint64_t> g_documented{0};

void GoodBump() {
  g_documented.fetch_add(1, std::memory_order_relaxed);
}

void GoodBumpElsewhere() {
  g_documented.fetch_add(2, std::memory_order_relaxed);
}

struct KernelStruct {
  uint32_t field;
};

uint32_t GoodKernelCast(KernelStruct* s) {
  // lint: raw-ok (kernel ABI struct, not payload bytes)
  const auto* raw = reinterpret_cast<const uint32_t*>(s);
  return raw[0];
}

}  // namespace net
}  // namespace squid
