// Known-good fixture: bucket math is legal inside src/obs/. Never compiled.
#include <cstddef>
#include <cstdint>

namespace squid {
namespace obs {

size_t GoodBucketMath(uint64_t v) { return BucketIndex(v); }

}  // namespace obs
}  // namespace squid
