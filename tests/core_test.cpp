#include <gtest/gtest.h>

#include <cmath>

#include "adb/abduction_ready_db.h"
#include "core/abduction_model.h"
#include "core/context_discovery.h"
#include "core/disambiguation.h"
#include "core/entity_lookup.h"
#include "core/squid.h"
#include "exec/executor.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::MakeMoviesDb;
using testing::NamesOf;

class AcademicsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeAcademicsDb();
    auto adb = AbductionReadyDb::Build(*db_);
    ASSERT_TRUE(adb.ok()) << adb.status().ToString();
    adb_ = std::move(adb).value();
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<AbductionReadyDb> adb_;
};

class MoviesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeMoviesDb();
    auto adb = AbductionReadyDb::Build(*db_);
    ASSERT_TRUE(adb.ok()) << adb.status().ToString();
    adb_ = std::move(adb).value();
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<AbductionReadyDb> adb_;
};

// ---------- Entity lookup ----------

TEST_F(AcademicsFixture, LookupFindsCoveringMatch) {
  auto matches = LookupExamples(*adb_, {"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(matches.ok());
  ASSERT_GE(matches.value().size(), 1u);
  EXPECT_EQ(matches.value()[0].relation, "academics");
  EXPECT_EQ(matches.value()[0].attribute, "name");
}

TEST_F(AcademicsFixture, LookupIsCaseInsensitive) {
  auto matches = LookupExamples(*adb_, {"dan susic", "SAM MADSEN"});
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value()[0].relation, "academics");
}

TEST_F(AcademicsFixture, LookupFailsWhenNoCommonRelation) {
  // One name, one interest: no single (relation, attribute) covers both.
  EXPECT_FALSE(LookupExamples(*adb_, {"Dan Susic", "data management"}).ok());
}

TEST_F(AcademicsFixture, LookupFailsForUnknownString) {
  EXPECT_FALSE(LookupExamples(*adb_, {"Dan Susic", "Nobody Nowhere"}).ok());
}

TEST_F(AcademicsFixture, LookupRejectsEmptyExampleSet) {
  EXPECT_FALSE(LookupExamples(*adb_, {}).ok());
}

// ---------- Disambiguation ----------

TEST(DisambiguationTest, PicksMostSimilarCandidates) {
  // Two movies share the title 'Twin'; one is a 2001 Comedy like the other
  // examples, the other a 1980 Drama. Disambiguation should pick the Comedy.
  auto db = std::make_unique<Database>("d");
  {
    Schema s("movie", {{"id", ValueType::kInt64},
                       {"title", ValueType::kString},
                       {"year", ValueType::kInt64},
                       {"kind", ValueType::kString}});
    s.set_primary_key("id");
    s.set_entity(true);
    s.AddPropertyAttribute("year");
    s.AddPropertyAttribute("kind");
    s.AddTextSearchAttribute("title");
    auto t = db->CreateTable(std::move(s));
    ASSERT_TRUE(t.ok());
    auto I = [](int64_t v) { return Value(v); };
    ASSERT_TRUE(t.value()->AppendRow({I(1), Value("Alpha"), I(2001), Value("Comedy")}).ok());
    ASSERT_TRUE(t.value()->AppendRow({I(2), Value("Beta"), I(2002), Value("Comedy")}).ok());
    ASSERT_TRUE(t.value()->AppendRow({I(3), Value("Twin"), I(2001), Value("Comedy")}).ok());
    ASSERT_TRUE(t.value()->AppendRow({I(4), Value("Twin"), I(1980), Value("Drama")}).ok());
  }
  auto adb = AbductionReadyDb::Build(*db);
  ASSERT_TRUE(adb.ok());
  auto matches = LookupExamples(*adb.value(), {"Alpha", "Beta", "Twin"});
  ASSERT_TRUE(matches.ok());
  const EntityMatch& match = matches.value()[0];
  EXPECT_GT(match.NumCombinations(), 1.0);

  SquidConfig config;
  auto keys = DisambiguateEntities(*adb.value(), match, config);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys.value().size(), 3u);
  EXPECT_EQ(keys.value()[2].AsInt64(), 3);  // the Comedy twin

  // Without disambiguation the first posting wins (id 3 or 4, whichever was
  // indexed first — row order means id 3; emulate ambiguity by checking the
  // config path executes).
  config.enable_disambiguation = false;
  auto keys2 = DisambiguateEntities(*adb.value(), match, config);
  ASSERT_TRUE(keys2.ok());
}

TEST_F(MoviesFixture, UnambiguousExamplesPassThrough) {
  auto matches = LookupExamples(*adb_, {"Jim Carris", "Ewan McGregg"});
  ASSERT_TRUE(matches.ok());
  SquidConfig config;
  auto keys = DisambiguateEntities(*adb_, matches.value()[0], config);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value()[0].AsInt64(), 1);
  EXPECT_EQ(keys.value()[1].AsInt64(), 2);
}

// ---------- Context discovery ----------

TEST_F(MoviesFixture, SharedCategoricalContext) {
  SquidConfig config;
  auto contexts = DiscoverContexts(
      *adb_, "person",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))}, config);
  ASSERT_TRUE(contexts.ok());
  bool found_gender = false;
  for (const auto& ctx : contexts.value()) {
    if (ctx.property.descriptor->id == "person.gender") {
      found_gender = true;
      EXPECT_EQ(ctx.property.value.AsString(), "Male");
      EXPECT_EQ(ctx.support, 2u);
      EXPECT_FALSE(ctx.property.has_theta());
    }
  }
  EXPECT_TRUE(found_gender);
}

TEST_F(MoviesFixture, NoContextWhenValuesDiffer) {
  SquidConfig config;
  // Jim (Male) and Laura (Female): no shared gender context.
  auto contexts = DiscoverContexts(
      *adb_, "person",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(3))}, config);
  ASSERT_TRUE(contexts.ok());
  for (const auto& ctx : contexts.value()) {
    EXPECT_NE(ctx.property.descriptor->id, "person.gender");
  }
}

TEST_F(MoviesFixture, NumericRangeContextUsesTightestBounds) {
  SquidConfig config;
  // Ages 60 (Jim) and 52 (Ewan) -> [52, 60].
  auto contexts = DiscoverContexts(
      *adb_, "person",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))}, config);
  ASSERT_TRUE(contexts.ok());
  bool found_age = false;
  for (const auto& ctx : contexts.value()) {
    if (ctx.property.descriptor->id == "person.age") {
      found_age = true;
      EXPECT_EQ(ctx.property.lo, 52);
      EXPECT_EQ(ctx.property.hi, 60);
    }
  }
  EXPECT_TRUE(found_age);
}

TEST_F(MoviesFixture, DerivedContextTakesMinTheta) {
  SquidConfig config;
  // Jim has 3 comedies, Ewan 2 -> shared derived genre context θ = 2.
  auto contexts = DiscoverContexts(
      *adb_, "person",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))}, config);
  ASSERT_TRUE(contexts.ok());
  bool found_comedy = false;
  for (const auto& ctx : contexts.value()) {
    if (ctx.property.descriptor->terminal_relation == "genre" &&
        !ctx.property.value.is_null() &&
        ctx.property.value.ToString() == "Comedy" && ctx.property.has_theta()) {
      found_comedy = true;
      EXPECT_EQ(ctx.property.theta, 2);
    }
  }
  EXPECT_TRUE(found_comedy);
}

TEST_F(AcademicsFixture, MultiValuedContextIntersection) {
  SquidConfig config;
  // Academics 101 & 103 share only 'data management'.
  auto contexts = DiscoverContexts(
      *adb_, "academics",
      {Value(static_cast<int64_t>(101)), Value(static_cast<int64_t>(103))}, config);
  ASSERT_TRUE(contexts.ok());
  ASSERT_EQ(contexts.value().size(), 1u);
  EXPECT_EQ(contexts.value()[0].property.value.AsString(), "data management");
  EXPECT_FALSE(contexts.value()[0].property.has_theta());  // multi-valued basic
}

// ---------- Abduction model ----------

TEST(AbductionMathTest, SkewnessOfSymmetricIsZero) {
  EXPECT_NEAR(AbductionModel::Skewness({1, 2, 3}), 0.0, 1e-9);
  EXPECT_EQ(AbductionModel::Skewness({5, 5}), 0.0);     // n < 3
  EXPECT_EQ(AbductionModel::Skewness({5, 5, 5}), 0.0);  // s = 0
}

TEST(AbductionMathTest, SkewnessMatchesAppendixBFormula) {
  // Hand-computed values of the adjusted Fisher-Pearson formula (Appendix
  // B): n·Σ(ai−ā)³ / (s³(n−1)(n−2)).
  EXPECT_NEAR(AbductionModel::Skewness({30, 25, 3, 2, 1}), 0.6678, 1e-3);
  EXPECT_NEAR(AbductionModel::Skewness({12, 10, 10, 9, 9}), 1.3608, 1e-3);
  // Realistic families (one dominant θ over many weak ones) exceed the
  // default threshold τs = 2.
  EXPECT_GT(AbductionModel::Skewness({40, 3, 2, 2, 1, 1, 1}), 2.0);
}

TEST(AbductionMathTest, OutlierTestDiscriminatesFig8Cases) {
  // Fig. 8 Case A: the strong genres stand out as outliers...
  EXPECT_TRUE(AbductionModel::IsOutlier(30, {30, 3, 2, 2, 1, 1, 1}, 2.0));
  // ...whereas Case B's flat distribution has none.
  std::vector<double> case_b = {12, 10, 10, 9, 9};
  for (double t : case_b) {
    EXPECT_FALSE(AbductionModel::IsOutlier(t, case_b, 2.0)) << t;
  }
}

TEST(AbductionMathTest, OutlierDetection) {
  std::vector<double> thetas = {30, 3, 2, 1, 2, 3, 1, 2};
  EXPECT_TRUE(AbductionModel::IsOutlier(30, thetas, 2.0));
  EXPECT_FALSE(AbductionModel::IsOutlier(3, thetas, 2.0));
  // n < 3: everything is an outlier.
  EXPECT_TRUE(AbductionModel::IsOutlier(1, {1, 1}, 2.0));
}

TEST_F(MoviesFixture, DeltaPenalizesWideRanges) {
  SquidConfig config;
  config.eta = 0.2;
  config.gamma = 2.0;
  AbductionModel model(adb_.get(), config);
  EXPECT_EQ(model.DeltaOf(0.1), 1.0);   // below η: no penalty
  EXPECT_EQ(model.DeltaOf(0.2), 1.0);   // at η
  EXPECT_NEAR(model.DeltaOf(0.4), 0.25, 1e-9);  // (0.4/0.2)^-2
  config.gamma = 0.0;
  AbductionModel no_penalty(adb_.get(), config);
  EXPECT_EQ(no_penalty.DeltaOf(0.9), 1.0);
}

TEST_F(MoviesFixture, AlphaThresholdsAssociationStrength) {
  SquidConfig config;
  config.tau_a = 5.0;
  AbductionModel model(adb_.get(), config);
  SemanticProperty weak;
  weak.theta = 2;
  SemanticProperty strong;
  strong.theta = 9;
  SemanticProperty basic;  // θ = ⊥
  EXPECT_EQ(model.AlphaOf(weak), 0.0);
  EXPECT_EQ(model.AlphaOf(strong), 1.0);
  EXPECT_EQ(model.AlphaOf(basic), 1.0);
}

TEST_F(MoviesFixture, AlgorithmOneIncludesSelectiveFilters) {
  // Academics-style check on the movie fixture: the examples {Jim, Ewan}
  // share gender=Male (ψ=4/6, common) — decision depends on ψ^|E| vs prior.
  SquidConfig config;
  config.tau_a = 2.0;  // allow the θ=2 comedy filter
  SquidConfig no_outlier = config;
  no_outlier.use_outlier_impact = false;
  auto contexts = DiscoverContexts(
      *adb_, "person",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))}, config);
  ASSERT_TRUE(contexts.ok());
  AbductionModel model(adb_.get(), no_outlier);
  auto filters = model.AbduceFilters(contexts.value(), 2);
  ASSERT_TRUE(filters.ok());
  for (const auto& f : filters.value()) {
    // Theorem 1's decision rule holds filter-by-filter.
    EXPECT_EQ(f.included, f.include_score > f.exclude_score) << f.property.theta;
    EXPECT_GE(f.selectivity, 0.0);
    EXPECT_LE(f.selectivity, 1.0);
  }
}

TEST_F(AcademicsFixture, Example21Abduction) {
  // The paper's Example 2.1: examples {Dan, Sam} share interest =
  // 'data management' (ψ = 3/6); under the example's equal-prior assumption
  // (Pr(Q1) = Pr(Q2), i.e. ρ = 0.5) the filter is included and the abduced
  // query returns exactly the three data-management academics.
  SquidConfig config;
  config.rho = 0.5;
  Squid squid(adb_.get(), config);
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok()) << abduced.status().ToString();
  ASSERT_EQ(abduced.value().entity_relation, "academics");
  EXPECT_EQ(abduced.value().NumIncludedFilters(), 1u);

  auto rs = ExecuteQuery(adb_->database(), abduced.value().adb_query);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NamesOf(rs.value()),
            (std::vector<std::string>{"Dan Susic", "Joe Hellman", "Sam Madsen"}));
}

TEST_F(AcademicsFixture, AdbAndOriginalFormsAgree) {
  SquidConfig config;
  config.rho = 0.5;
  Squid squid(adb_.get(), config);
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok());
  auto adb_rs = ExecuteQuery(adb_->database(), abduced.value().adb_query);
  auto orig_rs = ExecuteQuery(*db_, abduced.value().original_query);
  ASSERT_TRUE(adb_rs.ok());
  ASSERT_TRUE(orig_rs.ok()) << orig_rs.status().ToString();
  EXPECT_EQ(NamesOf(adb_rs.value()), NamesOf(orig_rs.value()));
}

TEST_F(AcademicsFixture, ValidityInvariant) {
  // E ⊆ Q(D) (Definition 2.1): every example appears in the abduced output.
  Squid squid(adb_.get());
  std::vector<std::string> examples = {"Dan Susic", "Joe Hellman"};
  auto abduced = squid.Discover(examples);
  ASSERT_TRUE(abduced.ok());
  auto rs = ExecuteQuery(adb_->database(), abduced.value().adb_query);
  ASSERT_TRUE(rs.ok());
  auto names = NamesOf(rs.value());
  for (const auto& e : examples) {
    EXPECT_NE(std::find(names.begin(), names.end(), e), names.end()) << e;
  }
}

TEST_F(MoviesFixture, GenericQueryWhenNothingShared) {
  // Toni (M, 50, drama) and Emma (F, 29, comedy): nothing meaningful shared;
  // expect a (near-)generic query over person.
  Squid squid(adb_.get());
  auto abduced = squid.Discover({"Toni Cruse", "Emma Stone"});
  ASSERT_TRUE(abduced.ok());
  auto rs = ExecuteQuery(adb_->database(), abduced.value().adb_query);
  ASSERT_TRUE(rs.ok());
  EXPECT_GE(rs.value().num_rows(), 2u);
}

TEST_F(MoviesFixture, DimensionBaseQueryWorks) {
  // IQ7-style: examples are genre names; base query on the dimension.
  Squid squid(adb_.get());
  auto abduced = squid.Discover({"Comedy", "Drama"});
  ASSERT_TRUE(abduced.ok()) << abduced.status().ToString();
  EXPECT_EQ(abduced.value().entity_relation, "genre");
  auto rs = ExecuteQuery(adb_->database(), abduced.value().adb_query);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 3u);  // generic: all genres
}

TEST_F(AcademicsFixture, LogPosteriorIsFinite) {
  Squid squid(adb_.get());
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok());
  EXPECT_TRUE(std::isfinite(abduced.value().log_posterior));
}

TEST_F(AcademicsFixture, SqlRenderingMentionsFilter) {
  SquidConfig config;
  config.rho = 0.5;
  Squid squid(adb_.get(), config);
  auto abduced = squid.Discover({"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(abduced.ok());
  std::string sql = ToSql(abduced.value().original_query);
  EXPECT_NE(sql.find("data management"), std::string::npos) << sql;
  EXPECT_NE(sql.find("research"), std::string::npos) << sql;
}

// Optimistic (QRE) preset behaves more inclusively.
TEST_F(MoviesFixture, OptimisticConfigIncludesMoreFilters) {
  Squid normal(adb_.get());
  Squid optimistic(adb_.get(), SquidConfig::Optimistic());
  auto a = normal.Discover({"Jim Carris", "Ewan McGregg"});
  auto b = optimistic.Discover({"Jim Carris", "Ewan McGregg"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b.value().NumIncludedFilters(), a.value().NumIncludedFilters());
}

}  // namespace
}  // namespace squid
