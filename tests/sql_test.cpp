#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace squid {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = Tokenize("SELECT name FROM person");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 5u);  // incl. end
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens.value()[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens.value()[1].text, "name");
  EXPECT_TRUE(tokens.value()[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens.value()[4].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens.value()[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 -7 3.5 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens.value()[1].text, "-7");
  EXPECT_EQ(tokens.value()[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens.value()[3].type, TokenType::kString);
  EXPECT_EQ(tokens.value()[3].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a >= 1 AND b <= 2 AND c != 3 AND d <> 4");
  ASSERT_TRUE(tokens.ok());
  int ne_count = 0;
  for (const auto& t : tokens.value()) {
    if (t.IsSymbol("!=")) ++ne_count;
  }
  EXPECT_EQ(ne_count, 2);  // <> normalizes to !=
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

// ---------- Parser ----------

TEST(ParserTest, MinimalSelect) {
  auto q = ParseSelect("SELECT name FROM person");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q.value().distinct);
  ASSERT_EQ(q.value().select_list.size(), 1u);
  EXPECT_EQ(q.value().select_list[0].column.table_alias, "person");
  EXPECT_EQ(q.value().select_list[0].column.attribute, "name");
}

TEST(ParserTest, DistinctAndAliases) {
  auto q = ParseSelect("SELECT DISTINCT p.name FROM person AS p");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().distinct);
  EXPECT_EQ(q.value().from[0].alias, "p");
}

TEST(ParserTest, ImplicitAlias) {
  auto q = ParseSelect("SELECT p.name FROM person p");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().from[0].alias, "p");
}

TEST(ParserTest, JoinsAndSelections) {
  auto q = ParseSelect(
      "SELECT a.name FROM academics a, research r "
      "WHERE r.aid = a.id AND r.interest = 'data management'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().join_predicates.size(), 1u);
  EXPECT_EQ(q.value().join_predicates[0].left.table_alias, "r");
  ASSERT_EQ(q.value().where.size(), 1u);
  EXPECT_EQ(q.value().where[0].value.AsString(), "data management");
}

TEST(ParserTest, AntiJoin) {
  auto q = ParseSelect(
      "SELECT a.name FROM author a, author b WHERE a.id != b.id");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().anti_join_predicates.size(), 1u);
}

TEST(ParserTest, BetweenAndIn) {
  auto q = ParseSelect(
      "SELECT p.name FROM person p WHERE p.age BETWEEN 30 AND 40 "
      "AND p.gender IN ('Male', 'Female')");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().where.size(), 2u);
  EXPECT_EQ(q.value().where[0].kind, Predicate::Kind::kBetween);
  EXPECT_EQ(q.value().where[1].kind, Predicate::Kind::kInList);
  EXPECT_EQ(q.value().where[1].in_list.size(), 2u);
}

TEST(ParserTest, GroupByHaving) {
  auto q = ParseSelect(
      "SELECT p.name FROM person p, castinfo c WHERE c.person_id = p.id "
      "GROUP BY p.id HAVING count(*) >= 40");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().group_by.size(), 1u);
  ASSERT_TRUE(q.value().having.has_value());
  EXPECT_EQ(q.value().having->op, CompareOp::kGe);
  EXPECT_EQ(q.value().having->value, 40);
}

TEST(ParserTest, Intersect) {
  auto q = ParseQuery(
      "SELECT m.title FROM movie m INTERSECT SELECT m.title FROM movie m");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().branches.size(), 2u);
}

TEST(ParserTest, UnqualifiedColumnsRequireSingleTable) {
  EXPECT_TRUE(ParseSelect("SELECT name FROM person WHERE age >= 5").ok());
  EXPECT_FALSE(ParseSelect("SELECT name FROM person, movie").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM person").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a.b FROM t WHERE a.b >").ok());
  EXPECT_FALSE(ParseSelect("SELECT a.b FROM t trailing junk tokens").ok());
  EXPECT_FALSE(ParseSelect("SELECT a.b FROM t WHERE a.b < c.d").ok());
}

// ---------- Printer round-trips ----------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParseIsStable) {
  auto q1 = ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam();
  std::string sql1 = ToSql(q1.value());
  auto q2 = ParseQuery(sql1);
  ASSERT_TRUE(q2.ok()) << sql1;
  EXPECT_EQ(sql1, ToSql(q2.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "SELECT name FROM person",
        "SELECT DISTINCT p.name FROM person AS p",
        "SELECT a.name FROM academics a, research r WHERE r.aid = a.id AND "
        "r.interest = 'data management'",
        "SELECT p.name FROM person p WHERE p.age BETWEEN 30 AND 40",
        "SELECT p.name FROM person p WHERE p.gender IN ('Male', 'Female')",
        "SELECT p.name FROM person p, castinfo c WHERE c.person_id = p.id "
        "GROUP BY p.id HAVING count(*) >= 40",
        "SELECT m.title FROM movie m INTERSECT SELECT m.title FROM movie m",
        "SELECT a.name FROM author a, author b WHERE a.id != b.id"));

// ---------- Predicates ----------

TEST(PredicateTest, CompareMatches) {
  Predicate p = Predicate::Compare({"t", "a"}, CompareOp::kGe,
                                   Value(static_cast<int64_t>(10)));
  EXPECT_TRUE(p.Matches(Value(static_cast<int64_t>(10))));
  EXPECT_TRUE(p.Matches(Value(11.0)));
  EXPECT_FALSE(p.Matches(Value(static_cast<int64_t>(9))));
  EXPECT_FALSE(p.Matches(Value::Null()));  // NULL never matches
}

TEST(PredicateTest, BetweenMatchesInclusive) {
  Predicate p = Predicate::Between({"t", "a"}, Value(static_cast<int64_t>(1)),
                                   Value(static_cast<int64_t>(3)));
  EXPECT_TRUE(p.Matches(Value(static_cast<int64_t>(1))));
  EXPECT_TRUE(p.Matches(Value(static_cast<int64_t>(3))));
  EXPECT_FALSE(p.Matches(Value(static_cast<int64_t>(4))));
  EXPECT_EQ(p.PrimitiveCount(), 2u);
}

TEST(PredicateTest, InListMatches) {
  Predicate p = Predicate::InList({"t", "a"}, {Value("x"), Value("y")});
  EXPECT_TRUE(p.Matches(Value("x")));
  EXPECT_FALSE(p.Matches(Value("z")));
  EXPECT_EQ(p.PrimitiveCount(), 2u);
}

TEST(PredicateTest, EvalCompareAllOps) {
  Value a(static_cast<int64_t>(1)), b(static_cast<int64_t>(2));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, a));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGt, a));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kEq, a));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kEq, Value::Null()));
}

TEST(QueryTest, NumPredicatesCountsJoinsSelectionsHaving) {
  auto q = ParseQuery(
      "SELECT p.name FROM person p, castinfo c WHERE c.person_id = p.id AND "
      "p.age BETWEEN 1 AND 2 GROUP BY p.id HAVING count(*) >= 3");
  ASSERT_TRUE(q.ok());
  // 1 join + 2 (between) + 1 (having) = 4.
  EXPECT_EQ(q.value().NumPredicates(), 4u);
}

TEST(PrinterTest, MultilineRendering) {
  auto q = ParseSelect("SELECT a.b FROM t a WHERE a.b = 1");
  ASSERT_TRUE(q.ok());
  std::string sql = ToSql(q.value(), {.multiline = true});
  EXPECT_NE(sql.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace squid
