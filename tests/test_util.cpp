#include "tests/test_util.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"

namespace squid {
namespace testing {

namespace {

void Must(const Status& s) { SQUID_CHECK(s.ok()) << s.ToString(); }

Value I(int64_t v) { return Value(v); }
Value S(const char* v) { return Value(v); }

}  // namespace

std::unique_ptr<Database> MakeAcademicsDb() {
  auto db = std::make_unique<Database>("cs_academics");

  {
    Schema s("academics", {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    s.set_primary_key("id");
    s.set_entity(true);
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    // The six researchers of Figure 1 (names lightly fictionalized).
    Must(t.value()->AppendRow({I(100), S("Tom Corwin")}));
    Must(t.value()->AppendRow({I(101), S("Dan Susic")}));
    Must(t.value()->AppendRow({I(102), S("Jia Hansen")}));
    Must(t.value()->AppendRow({I(103), S("Sam Madsen")}));
    Must(t.value()->AppendRow({I(104), S("Jim Kuros")}));
    Must(t.value()->AppendRow({I(105), S("Joe Hellman")}));
  }
  {
    Schema s("interest", {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    s.set_primary_key("id");
    s.AddPropertyAttribute("name");
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(1), S("algorithms")}));
    Must(t.value()->AppendRow({I(2), S("data management")}));
    Must(t.value()->AppendRow({I(3), S("data mining")}));
    Must(t.value()->AppendRow({I(4), S("distributed systems")}));
    Must(t.value()->AppendRow({I(5), S("computer networks")}));
  }
  {
    Schema s("research", {{"id", ValueType::kInt64},
                          {"aid", ValueType::kInt64},
                          {"interest_id", ValueType::kInt64}});
    s.set_primary_key("id");
    s.AddForeignKey({"aid", "academics", "id"});
    s.AddForeignKey({"interest_id", "interest", "id"});
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    int64_t id = 1;
    auto link = [&](int64_t aid, int64_t interest) {
      Must(t.value()->AppendRow({I(id++), I(aid), I(interest)}));
    };
    link(100, 1);  // algorithms
    link(101, 2);  // data management
    link(102, 3);  // data mining
    link(103, 2);  // data management
    link(103, 4);  // distributed systems
    link(104, 5);  // computer networks
    link(105, 2);  // data management
    link(105, 4);  // distributed systems
  }
  return db;
}

std::unique_ptr<Database> MakeMoviesDb() {
  auto db = std::make_unique<Database>("movies_excerpt");

  {
    Schema s("person", {{"id", ValueType::kInt64},
                        {"name", ValueType::kString},
                        {"gender", ValueType::kString},
                        {"age", ValueType::kInt64}});
    s.set_primary_key("id");
    s.set_entity(true);
    s.AddPropertyAttribute("gender");
    s.AddPropertyAttribute("age");
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    // Figure 5 / Figure 6 style excerpt (fictionalized names).
    Must(t.value()->AppendRow({I(1), S("Jim Carris"), S("Male"), I(60)}));
    Must(t.value()->AppendRow({I(2), S("Ewan McGregg"), S("Male"), I(52)}));
    Must(t.value()->AppendRow({I(3), S("Laura Holt"), S("Female"), I(58)}));
    Must(t.value()->AppendRow({I(4), S("Toni Cruse"), S("Male"), I(50)}));
    Must(t.value()->AppendRow({I(5), S("Clint East"), S("Male"), I(90)}));
    Must(t.value()->AppendRow({I(6), S("Emma Stone"), S("Female"), I(29)}));
  }
  {
    Schema s("movie", {{"id", ValueType::kInt64},
                       {"title", ValueType::kString},
                       {"year", ValueType::kInt64}});
    s.set_primary_key("id");
    s.set_entity(true);
    s.AddPropertyAttribute("year");
    s.AddTextSearchAttribute("title");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(10), S("Mighty Bruce"), I(2003)}));
    Must(t.value()->AppendRow({I(11), S("Dumb Duo"), I(1994)}));
    Must(t.value()->AppendRow({I(12), S("Phillip's Letters"), I(2009)}));
    Must(t.value()->AppendRow({I(13), S("Moulin Red"), I(2001)}));
    Must(t.value()->AppendRow({I(14), S("Trainspotters"), I(1996)}));
    Must(t.value()->AppendRow({I(15), S("Dumber Duo"), I(2014)}));
  }
  {
    Schema s("genre", {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    s.set_primary_key("id");
    s.AddPropertyAttribute("name");
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(1), S("Comedy")}));
    Must(t.value()->AppendRow({I(2), S("Fantasy")}));
    Must(t.value()->AppendRow({I(3), S("Drama")}));
  }
  {
    Schema s("movietogenre", {{"id", ValueType::kInt64},
                              {"movie_id", ValueType::kInt64},
                              {"genre_id", ValueType::kInt64}});
    s.set_primary_key("id");
    s.AddForeignKey({"movie_id", "movie", "id"});
    s.AddForeignKey({"genre_id", "genre", "id"});
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    int64_t id = 1;
    auto link = [&](int64_t movie, int64_t genre) {
      Must(t.value()->AppendRow({I(id++), I(movie), I(genre)}));
    };
    link(10, 1);  // Mighty Bruce: Comedy, Fantasy
    link(10, 2);
    link(11, 1);  // Dumb Duo: Comedy
    link(12, 1);  // Phillip's Letters: Comedy, Drama
    link(12, 3);
    link(13, 3);  // Moulin Red: Drama
    link(14, 3);  // Trainspotters: Drama
    link(15, 1);  // Dumber Duo: Comedy
  }
  {
    Schema s("castinfo", {{"id", ValueType::kInt64},
                          {"person_id", ValueType::kInt64},
                          {"movie_id", ValueType::kInt64}});
    s.set_primary_key("id");
    s.AddForeignKey({"person_id", "person", "id"});
    s.AddForeignKey({"movie_id", "movie", "id"});
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    int64_t id = 1;
    auto link = [&](int64_t person, int64_t movie) {
      Must(t.value()->AppendRow({I(id++), I(person), I(movie)}));
    };
    // Jim Carris: 3 comedies (10, 11, 12) + 1 drama-ish (12 double counted
    // via genres) — mirrors the persontogenre counts in Fig. 5.
    link(1, 10);
    link(1, 11);
    link(1, 12);
    // Ewan McGregg: comedies 10, 12; drama 13, 14.
    link(2, 10);
    link(2, 12);
    link(2, 13);
    link(2, 14);
    // Laura Holt: comedy 11.
    link(3, 11);
    // Toni Cruse: 13.
    link(4, 13);
    // Clint East: 14.
    link(5, 14);
    // Emma Stone: 15.
    link(6, 15);
  }
  return db;
}

std::vector<std::string> NamesOf(const ResultSet& rs) {
  std::vector<std::string> out;
  for (const Value& v : rs.ColumnValues(0)) {
    if (!v.is_null()) out.push_back(v.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::set<std::string> NameSet(const ResultSet& rs) {
  std::set<std::string> out;
  for (const Value& v : rs.ColumnValues(0)) {
    if (!v.is_null()) out.insert(v.ToString());
  }
  return out;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.num_columns(), b.num_columns()) << a.name();
  ASSERT_EQ(a.num_rows(), b.num_rows()) << a.name();
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const std::string& attr = a.schema().attributes()[c].name;
    EXPECT_EQ(attr, b.schema().attributes()[c].name) << a.name();
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << a.name() << "." << attr;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r))
          << a.name() << "." << attr << " row " << r;
      if (ca.IsNull(r)) continue;
      ASSERT_TRUE(ca.ValueAt(r) == cb.ValueAt(r))
          << a.name() << "." << attr << " row " << r << ": "
          << ca.ValueAt(r).ToString() << " vs " << cb.ValueAt(r).ToString();
      if (ca.type() == ValueType::kString) {
        ASSERT_EQ(ca.SymbolAt(r), cb.SymbolAt(r))
            << a.name() << "." << attr << " row " << r
            << ": symbol assignment diverged for '" << ca.StringAt(r) << "'";
      }
    }
  }
}

void ExpectDatabasesIdentical(const Database& a, const Database& b) {
  ASSERT_EQ(a.TableNames(), b.TableNames());
  for (const std::string& name : a.TableNames()) {
    auto ta = a.GetTable(name);
    auto tb = b.GetTable(name);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ExpectTablesIdentical(*ta.value(), *tb.value());
  }
}

}  // namespace testing
}  // namespace squid
