#include <gtest/gtest.h>

#include "adb/abduction_ready_db.h"
#include "baselines/naive_qbe.h"
#include "baselines/talos.h"
#include "datagen/adult_generator.h"
#include "eval/metrics.h"
#include "sql/printer.h"
#include "tests/test_util.h"
#include "workloads/adult_queries.h"

namespace squid {
namespace {

using testing::MakeAcademicsDb;
using testing::MakeMoviesDb;

TEST(NaiveQbeTest, ProducesGenericProjectQuery) {
  auto db = MakeAcademicsDb();
  auto adb = AbductionReadyDb::Build(*db);
  ASSERT_TRUE(adb.ok());
  auto result = NaiveQbe(*adb.value(), {"Dan Susic", "Sam Madsen"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().relation, "academics");
  // The Q1 shape of Example 1.1: no selections, no joins.
  EXPECT_EQ(result.value().query.NumPredicates(), 0u);
  EXPECT_EQ(ToSql(result.value().query),
            "SELECT DISTINCT academics.name FROM academics");
}

TEST(NaiveQbeTest, SameQueryForAnyExamplesOfTheRelation) {
  // The paper's critique: a structural QBE system produces the same generic
  // query for ANY set of names.
  auto db = MakeAcademicsDb();
  auto adb = AbductionReadyDb::Build(*db);
  ASSERT_TRUE(adb.ok());
  auto a = NaiveQbe(*adb.value(), {"Dan Susic", "Sam Madsen"});
  auto b = NaiveQbe(*adb.value(), {"Tom Corwin", "Jim Kuros"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToSql(a.value().query), ToSql(b.value().query));
}

class TalosAdultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    AdultOptions options;
    options.num_rows = 1200;
    auto db = GenerateAdult(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto adb = AbductionReadyDb::Build(*db_);
    ASSERT_TRUE(adb.ok());
    adb_ = std::move(adb).value();
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<AbductionReadyDb> adb_;
};

TEST_F(TalosAdultFixture, PerfectReverseEngineeringOnSingleRelation) {
  // Fig. 14: on the single-relation Adult dataset a decision tree driven to
  // purity reverse engineers the query exactly (f-score 1).
  auto queries = AdultBenchmarkQueries(*db_, 7);
  ASSERT_TRUE(queries.ok());
  const BenchmarkQuery& q = queries.value()[0];
  auto truth = GroundTruth(*db_, q);
  ASSERT_TRUE(truth.ok());

  // Intended output as entity keys.
  SelectQuery keys_query = ProjectBlock("adult", "adult", "id");
  keys_query.where = q.query.branches[0].where;
  auto key_rs = ExecuteQuery(*db_, Query::Single(keys_query));
  ASSERT_TRUE(key_rs.ok());
  std::vector<Value> positive_keys;
  for (const Value& v : key_rs.value().ColumnValues(0)) positive_keys.push_back(v);

  auto talos = RunTalos(*adb_, "adult", positive_keys);
  ASSERT_TRUE(talos.ok());
  std::unordered_set<std::string> predicted;
  for (const Value& v : talos.value().predicted_keys) predicted.insert(v.ToString());
  std::unordered_set<std::string> intended;
  for (const Value& v : positive_keys) intended.insert(v.ToString());
  Metrics m = ComputeMetrics(intended, predicted);
  EXPECT_EQ(m.fscore, 1.0);
  EXPECT_GT(talos.value().num_predicates, 0u);
  EXPECT_GT(talos.value().denormalized_rows, 0u);
}

TEST_F(TalosAdultFixture, PredicateCountGrowsWithScatteredIntents) {
  // A scattered positive set (random rows) cannot be explained compactly:
  // TALOS emits many rules, hence many predicates.
  auto adult = db_->GetTable("adult");
  ASSERT_TRUE(adult.ok());
  std::vector<Value> scattered;
  for (size_t r = 0; r < adult.value()->num_rows(); r += 37) {
    scattered.push_back(adult.value()->ValueAt(r, 0));
  }
  auto talos = RunTalos(*adb_, "adult", scattered);
  ASSERT_TRUE(talos.ok());
  EXPECT_GT(talos.value().num_predicates, 50u);
}

TEST(TalosTest, JoinSchemaLabelNoise) {
  // IQ1-style failure: the cast of one movie is labeled on denormalized rows
  // that also cover the actors' OTHER movies, so the tree sees noisy labels.
  auto db = MakeMoviesDb();
  auto adb = AbductionReadyDb::Build(*db);
  ASSERT_TRUE(adb.ok());
  // Intended: cast of 'Mighty Bruce' = persons 1, 2.
  std::vector<Value> positives = {Value(static_cast<int64_t>(1)),
                                  Value(static_cast<int64_t>(2))};
  auto talos = RunTalos(*adb.value(), "person", positives);
  ASSERT_TRUE(talos.ok());
  EXPECT_GT(talos.value().denormalized_rows,
            db->GetTable("person").value()->num_rows());
  // The result should at least cover the positives (closed-world recall).
  std::unordered_set<std::string> predicted;
  for (const Value& v : talos.value().predicted_keys) predicted.insert(v.ToString());
  EXPECT_TRUE(predicted.count("1"));
  EXPECT_TRUE(predicted.count("2"));
}

TEST(TalosTest, ReportsTiming) {
  auto db = MakeMoviesDb();
  auto adb = AbductionReadyDb::Build(*db);
  ASSERT_TRUE(adb.ok());
  auto talos = RunTalos(*adb.value(), "person", {Value(static_cast<int64_t>(1))});
  ASSERT_TRUE(talos.ok());
  EXPECT_GE(talos.value().seconds, 0.0);
  EXPECT_GT(talos.value().num_features, 0u);
}

}  // namespace
}  // namespace squid
