#ifndef SQUID_TESTS_TEST_UTIL_H_
#define SQUID_TESTS_TEST_UTIL_H_

/// \file test_util.h
/// \brief Shared fixtures: the paper's Example 1.1 database (academics with
/// research interests) and the Fig. 5 movie excerpt (persons, movies,
/// genres), plus small assertion helpers.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/result_set.h"
#include "storage/database.h"

namespace squid {
namespace testing {

/// Example 1.1: academics(id, name) with research interests attached via the
/// property-link table research(id, aid, interest_id) -> interest(id, name).
/// Dan Suciu / Sam Madden analogues share interest "data management".
std::unique_ptr<Database> MakeAcademicsDb();

/// Fig. 5 excerpt: person / movie entities, castinfo association, genre
/// dimension via movietogenre. Carrey-like person appears in 3 comedies.
std::unique_ptr<Database> MakeMoviesDb();

/// Column 0 of `rs` as a sorted vector of strings.
std::vector<std::string> NamesOf(const ResultSet& rs);

/// Convenience set construction.
std::set<std::string> NameSet(const ResultSet& rs);

/// Asserts (via gtest EXPECT) that two tables have identical schema, row
/// count, cell values, and — for string columns — identical dictionary
/// symbols. Used by the serial-vs-parallel determinism tests: the builds
/// must agree not just on strings but on symbol assignment.
void ExpectTablesIdentical(const Table& a, const Table& b);

/// Asserts that two databases contain the same relations with identical
/// contents (see ExpectTablesIdentical).
void ExpectDatabasesIdentical(const Database& a, const Database& b);

}  // namespace testing
}  // namespace squid

#endif  // SQUID_TESTS_TEST_UTIL_H_
