/// \file seed_corpus_gen.cpp
/// \brief Regenerates the checked-in seed corpus under fuzz/corpus/ using
/// the project's real encoders, so seeds are structurally valid by
/// construction, plus a corruption battery per format (truncations, bit
/// flips, wrong tags) that starts the fuzzer on both sides of each
/// validation wall.
///
/// For the snapshot target the battery includes container-valid images with
/// hostile extent *payloads* (assembled with SnapshotWriter, so every
/// checksum is genuine): random mutation of a whole valid snapshot almost
/// always dies at a checksum check, and these seeds are what carry the
/// fuzzer past it into the extent loaders.
///
/// Usage: fuzz_seed_gen [output-root]   (default: fuzz/corpus)
/// Deterministic: same tree -> same corpus bytes.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "common/logging.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace {

using squid::AbductionReadyDb;
using squid::Database;
using squid::ExtentType;
using squid::ExtentWriter;
using squid::Schema;
using squid::SnapshotWriter;
using squid::Status;
using squid::Value;
using squid::ValueType;

void Must(const Status& s) { SQUID_CHECK(s.ok()) << s.ToString(); }

Value I(int64_t v) { return Value(v); }
Value S(const char* v) { return Value(v); }

std::string g_root;

void MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "seed_corpus_gen: cannot mkdir %s\n", path.c_str());
    std::exit(1);
  }
}

void WriteSeed(const std::string& target, const std::string& name,
               const std::string& bytes) {
  std::string path = g_root + "/" + target + "/" + name;
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "seed_corpus_gen: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

void WriteSeed(const std::string& target, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  WriteSeed(target, name,
            // lint: raw-ok (uint8_t* -> char* view for fwrite, no decoding)
            std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()));
}

std::string Truncated(const std::string& bytes, size_t n) {
  return bytes.substr(0, n < bytes.size() ? n : bytes.size());
}

std::string BitFlipped(std::string bytes, size_t pos) {
  if (!bytes.empty()) bytes[pos % bytes.size()] ^= 0x20;
  return bytes;
}

/// The paper's Example 1.1 database (same shape as the test fixture), small
/// enough that its full αDB snapshot stays a reasonable seed size.
std::unique_ptr<Database> MakeSeedDb() {
  auto db = std::make_unique<Database>("cs_academics");
  {
    Schema s("academics",
             {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    s.set_primary_key("id");
    s.set_entity(true);
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(100), S("Tom Corwin")}));
    Must(t.value()->AppendRow({I(101), S("Dan Susic")}));
    Must(t.value()->AppendRow({I(102), S("Sam Madsen")}));
  }
  {
    Schema s("interest",
             {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    s.set_primary_key("id");
    s.AddPropertyAttribute("name");
    s.AddTextSearchAttribute("name");
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(1), S("algorithms")}));
    Must(t.value()->AppendRow({I(2), S("data management")}));
  }
  {
    Schema s("research", {{"id", ValueType::kInt64},
                          {"aid", ValueType::kInt64},
                          {"interest_id", ValueType::kInt64}});
    s.set_primary_key("id");
    s.AddForeignKey({"aid", "academics", "id"});
    s.AddForeignKey({"interest_id", "interest", "id"});
    auto t = db->CreateTable(std::move(s));
    Must(t.status());
    Must(t.value()->AppendRow({I(1), I(100), I(1)}));
    Must(t.value()->AppendRow({I(2), I(101), I(2)}));
    Must(t.value()->AppendRow({I(3), I(102), I(2)}));
  }
  return db;
}

squid::net::WireAnswer SampleAnswer() {
  squid::net::WireAnswer answer;
  answer.entity_relation = "academics";
  answer.projection_attr = "name";
  answer.adb_sql = "SELECT name FROM academics WHERE ...";
  answer.original_sql = "SELECT a.name FROM academics a JOIN research ...";
  answer.log_posterior = -3.25;
  answer.filters_included = 2;
  answer.filters_total = 5;
  answer.entity_keys = {"101", "102"};
  return answer;
}

std::vector<squid::net::WireHistogram> SampleHistograms() {
  squid::net::WireHistogram latency;
  latency.name = "serve.request_us";
  latency.snapshot.count = 6;
  latency.snapshot.sum = 730;
  latency.snapshot.max = 400;
  latency.snapshot.buckets[0] = 3;
  latency.snapshot.buckets[2] = 2;
  latency.snapshot.buckets[5] = 1;
  squid::net::WireHistogram empty;
  empty.name = "serve.queue_us";
  return {latency, empty};
}

/// Frame-decoder seeds carry a leading chunk-pattern byte (see
/// fuzz_frame_decoder.cpp); `pattern` selects it.
std::string Chunked(uint8_t pattern, const std::string& stream) {
  return std::string(1, static_cast<char>(pattern)) + stream;
}

void EmitFrameDecoderSeeds() {
  using namespace squid::net;
  std::string request = EncodeDiscoverRequestFrame(7, {"Dan Susic", "Sam Madsen"});
  std::string ok = EncodeDiscoverOkFrame(7, SampleAnswer());
  std::string error = EncodeDiscoverErrorFrame(
      8, Status::InvalidArgument("no entity matches example 'Bogus Name'"));
  std::string overloaded = EncodeOverloadedFrame(9, 250, "queue full");
  std::string stats_req = EncodeStatsRequestFrame(10);
  std::string stats = EncodeStatsResponseFrame(
      10, {{"requests_total", 41}, {"rejected_total", 3}}, SampleHistograms());

  WriteSeed("frame_decoder", "request", Chunked(0, request));
  WriteSeed("frame_decoder", "reply-ok", Chunked(1, ok));
  WriteSeed("frame_decoder", "reply-error", Chunked(2, error));
  WriteSeed("frame_decoder", "reply-overloaded", Chunked(3, overloaded));
  WriteSeed("frame_decoder", "stats-pair", Chunked(4, stats_req + stats));
  std::string pipelined = request + stats_req + ok + overloaded + error + stats;
  WriteSeed("frame_decoder", "pipelined", Chunked(0, pipelined));
  // Corruption battery: mid-frame truncation, flipped type tag, declared
  // length far beyond kMaxFramePayload, and leading garbage.
  WriteSeed("frame_decoder", "truncated",
            Chunked(1, Truncated(pipelined, pipelined.size() / 3)));
  WriteSeed("frame_decoder", "bad-type", Chunked(2, BitFlipped(request, 0)));
  std::string huge_len = request;
  huge_len[3] = '\x7f';  // length prefix byte 2 (offset 1..4): ~2 GiB
  WriteSeed("frame_decoder", "oversized-length", Chunked(3, huge_len));
  WriteSeed("frame_decoder", "garbage-prefix",
            Chunked(4, std::string("\x00\xff\xfe junk", 8) + request));
}

void EmitStatsResponseSeeds() {
  using namespace squid::net;
  // The target wants the *payload* (it builds the frame itself): strip the
  // 5-byte tag+length header the encoder prepends.
  auto payload_of = [](const std::string& frame) { return frame.substr(5); };
  std::string full = payload_of(EncodeStatsResponseFrame(
      10, {{"requests_total", 41}, {"rejected_total", 3}}, SampleHistograms()));
  std::string counters_only = payload_of(EncodeStatsResponseFrame(
      11, {{"requests_total", 1}}, {}));
  std::string empty = payload_of(EncodeStatsResponseFrame(12, {}, {}));

  WriteSeed("stats_response", "full", full);
  WriteSeed("stats_response", "counters-only", counters_only);
  WriteSeed("stats_response", "empty", empty);
  WriteSeed("stats_response", "truncated-histogram",
            Truncated(full, full.size() - 7));
  WriteSeed("stats_response", "flipped-version",
            BitFlipped(full, counters_only.size()));
  WriteSeed("stats_response", "flipped-bucket-index",
            BitFlipped(full, full.size() - 20));
}

void EmitSnapshotSeeds() {
  auto db = MakeSeedDb();
  squid::AdbOptions options;
  options.threads = 1;
  auto adb = AbductionReadyDb::Build(*db, options);
  Must(adb.status());
  std::string tmp = g_root + "/snapshot/valid";
  Must(adb.value()->SaveSnapshot(tmp));
  FILE* f = std::fopen(tmp.c_str(), "rb");
  SQUID_CHECK(f != nullptr);
  std::string valid;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) valid.append(buf, n);
  std::fclose(f);

  // Container battery: checksum walls catch these in FromBytes.
  WriteSeed("snapshot", "truncated-header", Truncated(valid, 40));
  WriteSeed("snapshot", "truncated-mid", Truncated(valid, valid.size() / 2));
  WriteSeed("snapshot", "flipped-payload", BitFlipped(valid, valid.size() / 2));
  WriteSeed("snapshot", "flipped-magic", BitFlipped(valid, 2));

  // Behind-the-wall battery: containers SnapshotWriter assembles are
  // checksum-valid by construction, so FromBytes passes and LoadSnapshot
  // must survive the hostile extent payloads.
  {
    SnapshotWriter w;
    ExtentWriter* manifest = w.AddExtent(ExtentType::kManifest);
    manifest->Str("cs_academics");
    manifest->U32(0xffffffffu);  // hostile table count
    for (int i = 0; i < 32; ++i) manifest->U64(0x4141414141414141ull);
    WriteSeed("snapshot", "hostile-manifest", w.Serialize());
  }
  {
    SnapshotWriter w;
    static const ExtentType kAll[] = {
        ExtentType::kManifest,     ExtentType::kStringPool,
        ExtentType::kSchemas,      ExtentType::kTableData,
        ExtentType::kInvertedIndex, ExtentType::kSchemaGraph,
        ExtentType::kPropertyStats};
    for (ExtentType type : kAll) {
      ExtentWriter* e = w.AddExtent(type);
      e->U32(1);
      e->Str("x");
      e->U64(static_cast<uint64_t>(-1));
    }
    WriteSeed("snapshot", "hostile-all-extents", w.Serialize());
  }
  {
    SnapshotWriter w;  // zero extents: valid container, no manifest
    WriteSeed("snapshot", "empty-container", w.Serialize());
  }
  {
    SnapshotWriter w;  // duplicate manifest: Extent() must refuse
    w.AddExtent(ExtentType::kManifest)->U32(0);
    w.AddExtent(ExtentType::kManifest)->U32(0);
    WriteSeed("snapshot", "duplicate-manifest", w.Serialize());
  }
}

void EmitCsvSeeds() {
  // Leading byte selects the schema (see fuzz_csv.cpp): 0 = people
  // (string,string), 1 = readings (int64,double,string), 2 = ids (int64).
  auto with_schema = [](uint8_t pick, const std::string& text) {
    return std::string(1, static_cast<char>(pick)) + text;
  };
  WriteSeed("csv", "people-plain",
            with_schema(0, "name,city\nAda,London\nEdsger,Austin\n"));
  WriteSeed("csv", "people-quoted",
            with_schema(0, "name,city\n\"Liskov, Barbara\",\"Cambridge\"\n"
                           "\"line\nbreak\",\"say \"\"hi\"\"\"\n"));
  WriteSeed("csv", "people-crlf",
            with_schema(0, "name,city\r\nAda,London\r\n"));
  WriteSeed("csv", "readings-mixed",
            with_schema(1, "id,value,label\n1,0.5,ok\n2,-3e4,\n3,,empty\n"));
  WriteSeed("csv", "ids-nulls", with_schema(2, "id\n1\n\n2\n\n"));
  // Corruption battery: every rejection arm of the reader.
  WriteSeed("csv", "bad-unterminated-quote",
            with_schema(0, "name,city\n\"open,Lon\n"));
  WriteSeed("csv", "bad-int", with_schema(2, "id\n12abc\n"));
  WriteSeed("csv", "bad-arity", with_schema(1, "id,value,label\n1,2\n"));
  WriteSeed("csv", "bad-quote-mid-field",
            with_schema(0, "name,city\nan\"na,x\n"));
  WriteSeed("csv", "bad-header-arity", with_schema(2, "id,extra\n1,2\n"));
}

}  // namespace

int main(int argc, char** argv) {
  g_root = argc > 1 ? argv[1] : "fuzz/corpus";
  MakeDir(g_root);
  for (const char* target :
       {"frame_decoder", "snapshot", "stats_response", "csv"}) {
    MakeDir(g_root + "/" + std::string(target));
  }
  EmitFrameDecoderSeeds();
  EmitStatsResponseSeeds();
  EmitSnapshotSeeds();
  EmitCsvSeeds();
  std::printf("seed_corpus_gen: corpus written under %s\n", g_root.c_str());
  return 0;
}
