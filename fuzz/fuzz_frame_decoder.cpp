/// \file fuzz_frame_decoder.cpp
/// \brief Fuzz target for the serve wire protocol's inbound path: the
/// incremental FrameDecoder (Feed/Next over arbitrary chunk boundaries) and
/// the payload decoders behind it (DecodeDiscoverRequest, DecodeReplyFrame).
///
/// Input shape: byte 0 selects a chunking pattern (so the decoder sees every
/// resync behavior, from byte-at-a-time drip to one big write); the rest is
/// the raw byte stream.
///
/// Invariants checked beyond "no crash / no sanitizer finding":
///   * a decoded reply re-encodes to the exact bytes it came from (the
///     decoders reject trailing garbage, so accepted input is canonical);
///   * the decoder never reports more buffered bytes than it was fed.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "net/frame.h"

namespace {

using squid::net::Frame;
using squid::net::FrameDecoder;
using squid::net::FrameType;
using squid::net::Reply;

std::string EncodeReply(const Reply& r) {
  switch (r.kind) {
    case Reply::Kind::kOk:
      return squid::net::EncodeDiscoverOkFrame(r.request_id, r.answer);
    case Reply::Kind::kError:
      return squid::net::EncodeDiscoverErrorFrame(r.request_id, r.ToStatus());
    case Reply::Kind::kOverloaded:
      return squid::net::EncodeOverloadedFrame(r.request_id, r.retry_after_ms,
                                               r.reason);
    case Reply::Kind::kStats:
      return squid::net::EncodeStatsResponseFrame(r.request_id, r.counters,
                                                  r.histograms);
  }
  return {};
}

void CheckFrame(const Frame& frame) {
  if (frame.type == FrameType::kDiscoverRequest) {
    uint64_t request_id = 0;
    std::vector<std::string> examples;
    squid::Status s = squid::net::DecodeDiscoverRequest(frame.payload,
                                                        &request_id, &examples);
    if (!s.ok()) return;
    // Round trip: the request encoder must reproduce the accepted frame.
    std::string bytes =
        squid::net::EncodeDiscoverRequestFrame(request_id, examples);
    FUZZ_CHECK(bytes ==
               squid::net::EncodeFrame(frame.type, frame.payload));
    return;
  }
  if (frame.type == FrameType::kStatsRequest) return;  // empty payload
  auto reply = squid::net::DecodeReplyFrame(frame);
  if (!reply.ok()) return;
  // Accepted replies are canonical: re-encoding is a byte-level fixpoint.
  std::string bytes = EncodeReply(reply.value());
  FUZZ_CHECK(bytes == squid::net::EncodeFrame(frame.type, frame.payload));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  static const size_t kChunkPatterns[] = {1, 2, 3, 7, 64, 4096, SIZE_MAX};
  size_t chunk = kChunkPatterns[data[0] % 7];
  // lint: raw-ok (uint8_t* -> char* view of the fuzz input, no decoding)
  const char* stream = reinterpret_cast<const char*>(data) + 1;
  size_t n = size - 1;

  FrameDecoder decoder;
  size_t fed = 0;
  for (size_t off = 0; off < n; off += chunk) {
    size_t take = chunk < n - off ? chunk : n - off;
    decoder.Feed(stream + off, take);
    fed += take;
    while (true) {
      auto next = decoder.Next();
      if (!next.ok()) return 0;  // malformed stream: permanent clean error
      const std::optional<Frame>& frame = next.value();
      if (!frame.has_value()) break;
      FUZZ_CHECK(decoder.buffered() <= fed);
      CheckFrame(*frame);
    }
  }
  return 0;
}
