/// \file fuzz_stats_response.cpp
/// \brief Fuzz target for the StatsResponse payload decoder, aimed squarely
/// at the versioned sparse-histogram section (the most index-heavy decode in
/// the protocol: per-histogram name + totals + a strictly-increasing list of
/// (bucket index, count) pairs that must tile obs::HistogramSnapshot's
/// bucket space without overflow).
///
/// The raw input is used verbatim as the payload of a kStatsResponse frame,
/// so every byte of the fuzz input lands in DecodeReplyFrame's stats arm.
///
/// Invariants checked on accepted payloads:
///   * the decoder's documented guarantee count == sum(buckets) holds for
///     every decoded histogram;
///   * re-encoding is a byte-level fixpoint (accepted input is canonical).

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz_util.h"
#include "net/frame.h"
#include "obs/metrics.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;  // engines may pass (nullptr, 0)
  squid::net::Frame frame;
  frame.type = squid::net::FrameType::kStatsResponse;
  // lint: raw-ok (uint8_t* -> char* view of the fuzz input, no decoding)
  frame.payload.assign(reinterpret_cast<const char*>(data), size);

  auto reply = squid::net::DecodeReplyFrame(frame);
  if (!reply.ok()) return 0;
  const squid::net::Reply& r = reply.value();
  FUZZ_CHECK(r.kind == squid::net::Reply::Kind::kStats);

  for (const squid::net::WireHistogram& h : r.histograms) {
    uint64_t bucket_sum = 0;
    for (uint64_t b : h.snapshot.buckets) bucket_sum += b;
    FUZZ_CHECK(h.snapshot.count == bucket_sum);
  }

  std::string bytes = squid::net::EncodeStatsResponseFrame(
      r.request_id, r.counters, r.histograms);
  FUZZ_CHECK(bytes == squid::net::EncodeFrame(frame.type, frame.payload));
  return 0;
}
