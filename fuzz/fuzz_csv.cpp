/// \file fuzz_csv.cpp
/// \brief Fuzz target for the CSV import path (users load their own files,
/// so the reader is a trust boundary): quote-aware logical-record assembly,
/// ParseCsvLine, and per-type field conversion.
///
/// Input shape: byte 0 selects the schema the document is read against
/// (string-only, mixed int/double/string, or single-column — each stresses
/// a different conversion arm); the rest is the CSV text.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz_util.h"
#include "storage/csv.h"
#include "storage/schema.h"

namespace {

squid::Schema MakeSchema(uint8_t pick) {
  using squid::ValueType;
  switch (pick % 3) {
    case 0:
      return squid::Schema("people", {{"name", ValueType::kString},
                                      {"city", ValueType::kString}});
    case 1:
      return squid::Schema("readings", {{"id", ValueType::kInt64},
                                        {"value", ValueType::kDouble},
                                        {"label", ValueType::kString}});
    default:
      return squid::Schema("ids", {{"id", ValueType::kInt64}});
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  squid::Schema schema = MakeSchema(data[0]);
  // lint: raw-ok (uint8_t* -> char* view of the fuzz input, no decoding)
  std::string text(reinterpret_cast<const char*>(data) + 1, size - 1);
  auto table = squid::ReadCsvFromString(schema, text, "<fuzz>");
  if (!table.ok()) return 0;
  // Accepted documents obey the schema: full arity, every non-null cell of
  // the declared type (Table::AppendRow enforces it; re-assert cheaply).
  FUZZ_CHECK(table.value().num_columns() == schema.num_attributes());
  return 0;
}
