/// \file standalone_driver.cpp
/// \brief main() for fuzz targets built without libFuzzer (gcc has no
/// -fsanitize=fuzzer). Speaks a compatible subset of the libFuzzer CLI so
/// ctest registrations and CI commands work under either driver:
///
///   fuzz_<target> [file|dir]... [-runs=N] [-max_total_time=S] [-seed=N]
///                 [-artifact_prefix=PATH/]
///
/// Behavior: every file argument (and every regular file inside a directory
/// argument) is replayed through LLVMFuzzerTestOneInput; then, if -runs or
/// -max_total_time asks for it, a deterministic mutation loop runs over the
/// corpus (xorshift64-driven bit flips, byte sets, truncations, chunk
/// duplications, and two-seed splices). No coverage feedback — this driver
/// exists so sanitizer builds can soak the trust boundaries on machines
/// without clang; real coverage-guided runs use clang + libFuzzer via the
/// same binaries (fuzz/CMakeLists.txt picks the driver at configure time).
///
/// Crash artifacts: the input about to run is kept in a global; fatal
/// signals write it to <artifact_prefix>crash-<pid> with async-signal-safe
/// calls before re-raising, so a crasher is always reproducible with
///   fuzz_<target> <artifact>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <string>
#include <unistd.h>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Current input, visible to the signal handler (single-threaded driver).
std::vector<uint8_t> g_current;
char g_artifact_prefix[512] = "";

void WriteCrashArtifact(int sig) {
  // Async-signal-safe only: no stdio, no allocation.
  char path[600];
  size_t n = 0;
  for (; g_artifact_prefix[n] != '\0' && n < sizeof(g_artifact_prefix); ++n) {
    path[n] = g_artifact_prefix[n];
  }
  const char stem[] = "crash-";
  // lint: raw-ok (building the artifact path in a signal handler, no decoding)
  std::memcpy(path + n, stem, sizeof(stem) - 1);
  n += sizeof(stem) - 1;
  unsigned pid = static_cast<unsigned>(getpid());
  char digits[16];
  int d = 0;
  do {
    digits[d++] = static_cast<char>('0' + pid % 10);
    pid /= 10;
  } while (pid != 0);
  while (d > 0) path[n++] = digits[--d];
  path[n] = '\0';

  int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t off = 0;
    while (off < g_current.size()) {
      ssize_t w = write(fd, g_current.data() + off, g_current.size() - off);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    close(fd);
    const char msg[] = "standalone_driver: crash input saved to ";
    (void)!write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)!write(STDERR_FILENO, path, n);
    (void)!write(STDERR_FILENO, "\n", 1);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void InstallCrashHandler() {
  for (int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL}) {
    signal(sig, WriteCrashArtifact);
  }
}

void RunOne(std::vector<uint8_t> input) {
  g_current = std::move(input);
  LLVMFuzzerTestOneInput(g_current.data(), g_current.size());
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  struct stat st {};
  if (stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "standalone_driver: cannot stat %s\n", path.c_str());
    std::exit(2);
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return;
  }
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> entries;
  while (dirent* e = readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    entries.push_back(path + "/" + e->d_name);
  }
  closedir(dir);
  // Deterministic replay order regardless of directory hash order.
  for (size_t i = 1; i < entries.size(); ++i) {
    for (size_t j = i; j > 0 && entries[j] < entries[j - 1]; --j) {
      std::swap(entries[j], entries[j - 1]);
    }
  }
  for (const std::string& e : entries) CollectInputs(e, files);
}

uint64_t g_rng_state = 1;
uint64_t NextRand() {
  // xorshift64: deterministic for a given -seed, good enough for mutation
  // scheduling (no statistical requirements).
  uint64_t x = g_rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return g_rng_state = x;
}

std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus) {
  std::vector<uint8_t> out = corpus[NextRand() % corpus.size()];
  int mutations = 1 + static_cast<int>(NextRand() % 4);
  for (int m = 0; m < mutations; ++m) {
    switch (NextRand() % 6) {
      case 0:  // bit flip
        if (!out.empty()) out[NextRand() % out.size()] ^= 1u << (NextRand() % 8);
        break;
      case 1:  // byte set
        if (!out.empty()) {
          out[NextRand() % out.size()] = static_cast<uint8_t>(NextRand());
        }
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(NextRand() % out.size());
        break;
      case 3: {  // duplicate a chunk in place
        if (out.empty()) break;
        size_t start = NextRand() % out.size();
        size_t len = 1 + NextRand() % (out.size() - start);
        std::vector<uint8_t> chunk(out.begin() + start,
                                   out.begin() + start + len);
        out.insert(out.begin() + start, chunk.begin(), chunk.end());
        break;
      }
      case 4: {  // insert random bytes
        size_t pos = out.empty() ? 0 : NextRand() % out.size();
        size_t len = 1 + NextRand() % 8;
        for (size_t i = 0; i < len; ++i) {
          out.insert(out.begin() + pos, static_cast<uint8_t>(NextRand()));
        }
        break;
      }
      default: {  // splice: head of this input + tail of another seed
        const std::vector<uint8_t>& other = corpus[NextRand() % corpus.size()];
        if (other.empty()) break;
        size_t head = out.empty() ? 0 : NextRand() % out.size();
        size_t tail = NextRand() % other.size();
        out.resize(head);
        out.insert(out.end(), other.begin() + tail, other.end());
        break;
      }
    }
  }
  if (out.size() > (1u << 20)) out.resize(1u << 20);  // match -max_len spirit
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long runs = -1;          // -1: not set
  long max_total_time = 0; // seconds; 0: no time budget
  uint64_t seed = 1;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::atol(arg + 6);
    } else if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time = std::atol(arg + 16);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 6));
    } else if (std::strncmp(arg, "-artifact_prefix=", 17) == 0) {
      std::snprintf(g_artifact_prefix, sizeof(g_artifact_prefix), "%s",
                    arg + 17);
    } else if (arg[0] == '-') {
      // Ignore unknown libFuzzer flags so shared CI command lines work.
      std::fprintf(stderr, "standalone_driver: ignoring flag %s\n", arg);
    } else {
      paths.push_back(arg);
    }
  }
  g_rng_state = seed != 0 ? seed : 1;
  InstallCrashHandler();

  std::vector<std::string> files;
  for (const std::string& p : paths) CollectInputs(p, &files);

  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& f : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFile(f, &bytes)) {
      std::fprintf(stderr, "standalone_driver: cannot read %s\n", f.c_str());
      return 2;
    }
    corpus.push_back(std::move(bytes));
  }
  std::fprintf(stderr, "standalone_driver: replaying %zu corpus input(s)\n",
               corpus.size());
  for (const std::vector<uint8_t>& input : corpus) RunOne(input);

  long budget = runs >= 0 ? runs : (max_total_time > 0 ? -1 : 0);
  if ((budget != 0 || max_total_time > 0) && !corpus.empty()) {
    std::time_t deadline =
        max_total_time > 0 ? std::time(nullptr) + max_total_time : 0;
    long executed = 0;
    while ((budget < 0 || executed < budget) &&
           (deadline == 0 || std::time(nullptr) < deadline)) {
      RunOne(Mutate(corpus));
      ++executed;
    }
    std::fprintf(stderr, "standalone_driver: %ld mutated run(s), no crash\n",
                 executed);
  }
  std::fprintf(stderr, "standalone_driver: done\n");
  return 0;
}
