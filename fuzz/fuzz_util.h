#ifndef SQUID_FUZZ_FUZZ_UTIL_H_
#define SQUID_FUZZ_FUZZ_UTIL_H_

/// \file fuzz_util.h
/// \brief Shared bits for the fuzz targets (fuzz/README.md explains the
/// harness layout and how to add a target).

#include <cstdio>
#include <cstdlib>

/// A failed FUZZ_CHECK is a finding: it aborts so the fuzzing engine (or the
/// standalone driver's crash handler) records the input that broke the
/// invariant. Active regardless of NDEBUG, unlike assert().
#define FUZZ_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                               \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#endif  // SQUID_FUZZ_FUZZ_UTIL_H_
