/// \file fuzz_snapshot.cpp
/// \brief Fuzz target for the snapshot trust boundary: container validation
/// (SnapshotFile::FromBytes — header, directory, extent tiling, checksums)
/// and, for images that validate, the full αDB restore
/// (AbductionReadyDb::LoadSnapshot over the in-memory image — extent
/// payload parsing, cross-extent consistency checks, index rebuilds).
///
/// Malformed input of any kind must yield a Status error: never a crash,
/// never an out-of-bounds read (the harness builds under ASan+UBSan).
///
/// Note the checksum wall: random mutations of a valid image almost always
/// die in FromBytes. The seed corpus therefore includes payload-level
/// corruptions re-stamped with valid checksums (seed_corpus_gen.cpp) so the
/// extent loaders behind the wall get exercised too.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "fuzz_util.h"
#include "storage/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;  // engines may pass (nullptr, 0)
  std::vector<uint8_t> bytes(data, data + size);
  auto file = squid::SnapshotFile::FromBytes(std::move(bytes));
  if (!file.ok()) return 0;
  // Structurally sound container: the restore must still handle hostile
  // extent payloads gracefully. Ok or error both fine; UB is the bug.
  auto adb = squid::AbductionReadyDb::LoadSnapshot(file.value());
  if (adb.ok()) FUZZ_CHECK(adb.value() != nullptr);
  return 0;
}
