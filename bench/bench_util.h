#ifndef SQUID_BENCH_BENCH_UTIL_H_
#define SQUID_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared setup for the figure-regenerating bench binaries: dataset
/// construction at bench scales, αDB building, and tiny flag parsing.
///
/// Every binary prints the rows/series of the paper artifact it regenerates.
/// Absolute numbers differ from the paper (synthetic data, different
/// hardware); the SHAPE of each trend is the reproduction target — see
/// docs/EXPERIMENTS.md and the bench-to-figure table in README.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "adb/abduction_ready_db.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "datagen/adult_generator.h"
#include "datagen/dblp_generator.h"
#include "datagen/imdb_generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/sampler.h"
#include "eval/table_printer.h"
#include "workloads/adult_queries.h"
#include "workloads/benchmark_query.h"
#include "workloads/case_studies.h"
#include "workloads/dblp_queries.h"
#include "workloads/imdb_queries.h"

namespace squid {
namespace bench {

/// Simple flag lookup: --name=value.
inline double FlagOr(int argc, char** argv, const char* name, double fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Integer flag lookup: --name=value.
inline size_t SizeFlagOr(int argc, char** argv, const char* name, size_t fallback) {
  return static_cast<size_t>(
      FlagOr(argc, argv, name, static_cast<double>(fallback)));
}

/// String-valued flag lookup: --name=value ("" when absent).
inline std::string StringFlagOr(int argc, char** argv, const char* name,
                                const char* fallback = "") {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Shared bench I/O setup: parses `--json=<path>` and, when present,
/// enables the process-wide JSON sink so every table the bench prints is
/// also written to <path> as machine-readable JSON at exit. Call first in
/// every bench main. scripts/run_benches.sh passes --json for each bench
/// and collects the files under bench/out/.
inline void InitBenchIo(int argc, char** argv, const char* bench_name) {
  std::string json_path = StringFlagOr(argc, argv, "json");
  if (!json_path.empty()) BenchJsonSink::Enable(json_path, bench_name);
}

/// Bench-default dataset scales (kept modest so the full harness finishes in
/// minutes on one core; raise with --scale=... for larger runs).
constexpr double kImdbBenchScale = 0.25;
constexpr double kDblpBenchScale = 0.3;
constexpr size_t kAdultBenchRows = 6000;

struct ImdbBench {
  ImdbData data;
  std::unique_ptr<AbductionReadyDb> adb;
  std::vector<BenchmarkQuery> queries;
};

inline ImdbBench BuildImdbBench(double scale = kImdbBenchScale) {
  ImdbOptions options;
  options.scale = scale;
  auto data = GenerateImdb(options);
  SQUID_CHECK(data.ok()) << data.status().ToString();
  ImdbBench bench{std::move(data).value(), nullptr, {}};
  auto adb = AbductionReadyDb::Build(*bench.data.db);
  SQUID_CHECK(adb.ok()) << adb.status().ToString();
  bench.adb = std::move(adb).value();
  bench.queries = ImdbBenchmarkQueries(bench.data.manifest);
  return bench;
}

struct DblpBench {
  DblpData data;
  std::unique_ptr<AbductionReadyDb> adb;
  std::vector<BenchmarkQuery> queries;
};

inline DblpBench BuildDblpBench(double scale = kDblpBenchScale) {
  DblpOptions options;
  options.scale = scale;
  auto data = GenerateDblp(options);
  SQUID_CHECK(data.ok()) << data.status().ToString();
  DblpBench bench{std::move(data).value(), nullptr, {}};
  auto adb = AbductionReadyDb::Build(*bench.data.db);
  SQUID_CHECK(adb.ok()) << adb.status().ToString();
  bench.adb = std::move(adb).value();
  bench.queries = DblpBenchmarkQueries(bench.data.manifest);
  return bench;
}

struct AdultBench {
  std::unique_ptr<Database> db;
  std::unique_ptr<AbductionReadyDb> adb;
  std::vector<BenchmarkQuery> queries;
};

inline AdultBench BuildAdultBench(size_t rows = kAdultBenchRows,
                                  size_t scale_factor = 1) {
  AdultOptions options;
  options.num_rows = rows;
  options.scale_factor = scale_factor;
  auto db = GenerateAdult(options);
  SQUID_CHECK(db.ok()) << db.status().ToString();
  AdultBench bench{std::move(db).value(), nullptr, {}};
  auto adb = AbductionReadyDb::Build(*bench.db);
  SQUID_CHECK(adb.ok()) << adb.status().ToString();
  bench.adb = std::move(adb).value();
  auto queries = AdultBenchmarkQueries(*bench.db);
  SQUID_CHECK(queries.ok()) << queries.status().ToString();
  bench.queries = std::move(queries).value();
  return bench;
}

/// Intended output of `query` as entity primary keys (for the closed-world
/// QRE baselines).
inline std::vector<Value> GroundTruthKeys(const Database& db,
                                          const BenchmarkQuery& query) {
  Query keys_query = query.query;
  for (auto& branch : keys_query.branches) {
    // Project the entity key instead of the display attribute.
    auto table = db.GetTable(query.entity_relation);
    SQUID_CHECK(table.ok());
    const auto& pk = table.value()->schema().primary_key();
    SQUID_CHECK(pk.has_value());
    // The entity alias is the alias whose table is the entity relation.
    std::string alias;
    for (const auto& ref : branch.from) {
      if (ref.table_name == query.entity_relation) {
        alias = ref.alias;
        break;
      }
    }
    SQUID_CHECK(!alias.empty());
    branch.select_list = {SelectItem{{alias, *pk}}};
  }
  auto rs = ExecuteQuery(db, keys_query);
  SQUID_CHECK(rs.ok()) << rs.status().ToString();
  rs.value().Deduplicate();
  std::vector<Value> keys;
  for (const Value& v : rs.value().ColumnValues(0)) keys.push_back(v);
  return keys;
}

/// Banner printed by each bench; also labels subsequent JSON tables.
inline void Banner(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  BenchJsonSink::SetSection(std::string(figure) + ": " + what);
}

}  // namespace bench
}  // namespace squid

#endif  // SQUID_BENCH_BENCH_UTIL_H_
