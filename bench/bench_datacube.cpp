// Regenerates the Appendix F.4 comparison: answering "genre counts of
// person X" from the αDB's aggregated derived relation (persontogenre-style,
// entity-indexed) vs from a data-cube-style materialization of the raw
// (person, movie, genre) join, which must aggregate over the movie dimension
// at query time. Expected shape: the αDB is 1-2 orders of magnitude faster
// per lookup and several times smaller, because the cube keeps the
// non-meaningful person-to-movie dimension that the αDB aggregates out.

#include <map>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "storage/column_index.h"

using namespace squid;
using namespace squid::bench;

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_datacube");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t lookups = static_cast<size_t>(FlagOr(argc, argv, "lookups", 2000));
  Banner("Appendix F.4", "aDB derived relation vs data-cube materialization");

  ImdbBench bench = BuildImdbBench(scale);
  const Database& adb_db = bench.adb->database();

  // The αDB side: the persontogenre-style derived relation + entity index.
  const PropertyDescriptor* ptg = nullptr;
  for (const auto* d : bench.adb->schema_graph().DescriptorsFor("person")) {
    if (d->kind == PropertyKind::kDerivedCategorical &&
        d->terminal_relation == "genre" && d->hops.size() == 2) {
      ptg = d;
      break;
    }
  }
  SQUID_CHECK(ptg != nullptr);
  auto derived = adb_db.GetTable(ptg->derived_table);
  SQUID_CHECK(derived.ok());

  // The cube side: materialize (person_id, movie_id, genre_id) cells — the
  // full castinfo x movietogenre join — indexed by person.
  auto castinfo = adb_db.GetTable("castinfo");
  auto movietogenre = adb_db.GetTable("movietogenre");
  SQUID_CHECK(castinfo.ok() && movietogenre.ok());
  Schema cube_schema("cube", {{"person_id", ValueType::kInt64},
                              {"movie_id", ValueType::kInt64},
                              {"genre_id", ValueType::kInt64}});
  Table cube(cube_schema);
  {
    auto mtg_index = HashColumnIndex::Build(*movietogenre.value(), "movie_id");
    SQUID_CHECK(mtg_index.ok());
    const Column* person = castinfo.value()->ColumnByName("person_id").value();
    const Column* movie = castinfo.value()->ColumnByName("movie_id").value();
    const Column* genre = movietogenre.value()->ColumnByName("genre_id").value();
    for (size_t r = 0; r < castinfo.value()->num_rows(); ++r) {
      const auto* links = mtg_index.value().Lookup(movie->ValueAt(r));
      if (links == nullptr) continue;
      for (size_t lr : *links) {
        SQUID_CHECK(cube.AppendRow({person->ValueAt(r), movie->ValueAt(r),
                                    genre->ValueAt(lr)})
                        .ok());
      }
    }
  }
  auto cube_index = HashColumnIndex::Build(cube, "person_id");
  auto derived_index = HashColumnIndex::Build(*derived.value(), "entity_id");
  SQUID_CHECK(cube_index.ok() && derived_index.ok());

  const Column* cube_genre = cube.ColumnByName("genre_id").value();
  const Column* derived_value = derived.value()->ColumnByName("value").value();
  const Column* derived_count = derived.value()->ColumnByName("count").value();

  auto persons = adb_db.GetTable("person");
  SQUID_CHECK(persons.ok());
  const Column* person_id = persons.value()->ColumnByName("id").value();
  Rng rng(5);

  // αDB lookups: read the (genre, count) rows of the entity.
  double adb_checksum = 0;
  Stopwatch adb_timer;
  for (size_t i = 0; i < lookups; ++i) {
    size_t r = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(persons.value()->num_rows()) - 1));
    const auto* rows = derived_index.value().Lookup(person_id->ValueAt(r));
    if (rows == nullptr) continue;
    for (size_t dr : *rows) {
      adb_checksum += static_cast<double>(derived_count->Int64At(dr));
      (void)derived_value->ValueAt(dr);
    }
  }
  double adb_seconds = adb_timer.ElapsedSeconds();

  // Cube lookups: aggregate genre counts over the person's cube slice.
  Rng rng2(5);  // same person sequence
  double cube_checksum = 0;
  Stopwatch cube_timer;
  for (size_t i = 0; i < lookups; ++i) {
    size_t r = static_cast<size_t>(
        rng2.UniformInt(0, static_cast<int64_t>(persons.value()->num_rows()) - 1));
    const auto* rows = cube_index.value().Lookup(person_id->ValueAt(r));
    if (rows == nullptr) continue;
    std::map<int64_t, int64_t> counts;
    for (size_t cr : *rows) ++counts[cube_genre->Int64At(cr)];
    for (const auto& [_, c] : counts) cube_checksum += static_cast<double>(c);
  }
  double cube_seconds = cube_timer.ElapsedSeconds();
  SQUID_CHECK(adb_checksum == cube_checksum) << adb_checksum << " vs " << cube_checksum;

  TablePrinter table({"store", "rows", "KB", "time for lookups (s)",
                      "us per lookup"});
  table.AddRow({"aDB derived relation", TablePrinter::Int(derived.value()->num_rows()),
                TablePrinter::Int(derived.value()->ApproxBytes() / 1024),
                TablePrinter::Num(adb_seconds, 4),
                TablePrinter::Num(1e6 * adb_seconds / lookups, 2)});
  table.AddRow({"data cube (raw cells)", TablePrinter::Int(cube.num_rows()),
                TablePrinter::Int(cube.ApproxBytes() / 1024),
                TablePrinter::Num(cube_seconds, 4),
                TablePrinter::Num(1e6 * cube_seconds / lookups, 2)});
  table.Print();
  std::printf("cube/aDB slowdown: %.1fx, size ratio: %.1fx\n",
              cube_seconds / std::max(1e-9, adb_seconds),
              static_cast<double>(cube.num_rows()) /
                  std::max<size_t>(1, derived.value()->num_rows()));
  return 0;
}
