// Out-of-cache probe latency for the three memory-bound probe paths: the
// join hash (FlatJoinHash::ProbeBatch), the inverted index's CSR lookup
// (LookupFoldedBatch), and the group-by table (GroupKeyTable::AddBatch).
// Working-set sizes sweep from cache-resident past the LLC, and each size
// is measured under three MemConfig::prefetch_window settings: 1 (pipeline
// disabled — every bucket read stalls), 8 (the old hardcoded lookahead),
// and the default pipelined window. The reproduction target — asserted by
// scripts/check_bench_trends.py — is that the pipelined probe is not slower
// than the unprefetched one at the largest (out-of-LLC) scale; on real DRAM
// it should be substantially faster (DRAMHiT-style latency hiding).
//
// Every pass also folds its results into a checksum and the bench aborts if
// any window setting disagrees with window=1 — the pipeline must be a pure
// latency optimization.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/mem_arena.h"
#include "common/rng.h"
#include "exec/group_table.h"
#include "exec/join_hash.h"
#include "storage/database.h"
#include "storage/inverted_index.h"

using namespace squid;
using namespace squid::bench;

namespace {

constexpr size_t kChunk = 1024;  // executor's probe-chunk size

/// Minimum wall-clock over `runs` invocations of `fn`, in nanoseconds per
/// item over `items`.
template <typename Fn>
double BestNsPerItem(size_t runs, size_t items, Fn fn) {
  double best_s = 0;
  for (size_t r = 0; r < runs; ++r) {
    Stopwatch watch;
    fn();
    double s = watch.ElapsedSeconds();
    if (r == 0 || s < best_s) best_s = s;
  }
  return best_s * 1e9 / static_cast<double>(items);
}

struct Pass {
  double ns = 0;
  uint64_t checksum = 0;
};

/// Measures `fn` (which returns a checksum) under prefetch window `w`.
template <typename Fn>
Pass MeasureAtWindow(size_t w, size_t runs, size_t items, Fn fn) {
  const size_t saved = GlobalMemConfig().prefetch_window;
  GlobalMemConfig().prefetch_window = w;
  Pass pass;
  pass.ns = BestNsPerItem(runs, items, [&] { pass.checksum = fn(); });
  GlobalMemConfig().prefetch_window = saved;
  return pass;
}

void AddSweepRow(TablePrinter* table, const char* structure, size_t keys,
                 size_t bytes, const Pass& w1, const Pass& w8,
                 const Pass& wp) {
  SQUID_CHECK(w8.checksum == w1.checksum && wp.checksum == w1.checksum)
      << structure << " probe results diverge across prefetch windows";
  table->AddRow({structure, TablePrinter::Int(keys),
                 TablePrinter::Num(bytes / (1024.0 * 1024.0), 1),
                 TablePrinter::Num(w1.ns, 2), TablePrinter::Num(w8.ns, 2),
                 TablePrinter::Num(wp.ns, 2),
                 TablePrinter::Num(wp.ns > 0 ? w1.ns / wp.ns : 0, 2)});
}

void BenchJoinProbe(TablePrinter* table, size_t n, size_t runs,
                    size_t pipelined_w) {
  Column col(ValueType::kInt64, nullptr);
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) {
    col.AppendInt64(static_cast<int64_t>(i));
    rows[i] = static_cast<uint32_t>(i);
  }
  FlatJoinHash hash = FlatJoinHash::Build(col, rows);

  // Probe every key once, in random order: at out-of-LLC table sizes each
  // bucket read is a fresh DRAM line.
  Rng rng(0x5eed);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i;
  rng.Shuffle(&keys);
  std::vector<uint8_t> valid(n, 1);
  std::vector<FlatJoinHash::RowSpan> out(kChunk);

  auto probe_all = [&]() -> uint64_t {
    uint64_t sum = 0;
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t m = std::min(kChunk, n - base);
      hash.ProbeBatch(keys.data() + base, valid.data() + base, m, out.data());
      for (size_t i = 0; i < m; ++i) sum += out[i].size + *out[i].data;
    }
    return sum;
  };
  Pass w1 = MeasureAtWindow(1, runs, n, probe_all);
  Pass w8 = MeasureAtWindow(8, runs, n, probe_all);
  Pass wp = MeasureAtWindow(pipelined_w, runs, n, probe_all);
  AddSweepRow(table, "join-probe", n, hash.ApproxBytes(), w1, w8, wp);
}

void BenchCsrLookup(TablePrinter* table, size_t n, size_t runs,
                    size_t pipelined_w) {
  // A synthetic entity table with n distinct indexed strings; the CSR
  // arrays plus the symbol->slot table are the probe working set.
  Database db;
  Schema schema("vals", {{"name", ValueType::kString}});
  schema.set_entity(true);
  schema.AddTextSearchAttribute("name");
  auto created = db.CreateTable(std::move(schema));
  SQUID_CHECK(created.ok()) << created.status().ToString();
  Table* t = created.value();
  t->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Status s = t->AppendRow({Value("v" + std::to_string(i))});
    SQUID_CHECK(s.ok()) << s.ToString();
  }
  auto built = InvertedColumnIndex::Build(db);
  SQUID_CHECK(built.ok()) << built.status().ToString();
  const InvertedColumnIndex& index = built.value();

  Rng rng(0xcafe);
  std::vector<Symbol> probes(n);
  const StringPool& pool = index.pool();
  const Column& col = t->column(0);
  for (size_t i = 0; i < n; ++i) probes[i] = pool.FoldedOf(col.SymbolAt(i));
  rng.Shuffle(&probes);
  std::vector<InvertedColumnIndex::PostingSpan> out(kChunk);

  auto lookup_all = [&]() -> uint64_t {
    uint64_t sum = 0;
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t m = std::min(kChunk, n - base);
      index.LookupFoldedBatch(probes.data() + base, m, out.data());
      for (size_t i = 0; i < m; ++i) sum += out[i].size() + out[i][0].row;
    }
    return sum;
  };
  Pass w1 = MeasureAtWindow(1, runs, n, lookup_all);
  Pass w8 = MeasureAtWindow(8, runs, n, lookup_all);
  Pass wp = MeasureAtWindow(pipelined_w, runs, n, lookup_all);
  AddSweepRow(table, "csr-lookup", n, index.ApproxBytes(), w1, w8, wp);
}

void BenchGroupBy(TablePrinter* table, size_t n, size_t runs,
                  size_t pipelined_w) {
  // n tuples over n/2 distinct 1-column keys in random order: half the adds
  // insert, half hit an existing (randomly placed) group.
  constexpr size_t kParts = 2;
  Rng rng(0x6007);
  std::vector<uint64_t> key_of(n);
  for (size_t i = 0; i < n; ++i) key_of[i] = i / 2;
  rng.Shuffle(&key_of);
  std::vector<uint64_t> packed(n * kParts);
  for (size_t i = 0; i < n; ++i) {
    packed[i * kParts] = 1;
    packed[i * kParts + 1] = key_of[i];
  }

  size_t bytes = 0;
  auto group_all = [&]() -> uint64_t {
    GroupKeyTable groups(kParts);
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t m = std::min(kChunk, n - base);
      groups.AddBatch(packed.data() + base * kParts, m,
                      static_cast<uint32_t>(base));
    }
    bytes = groups.ApproxBytes();
    uint64_t sum = groups.num_groups();
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      sum += groups.groups()[g].count + groups.groups()[g].first_tuple;
    }
    return sum;
  };
  Pass w1 = MeasureAtWindow(1, runs, n, group_all);
  Pass w8 = MeasureAtWindow(8, runs, n, group_all);
  Pass wp = MeasureAtWindow(pipelined_w, runs, n, group_all);
  AddSweepRow(table, "group-by", n, bytes, w1, w8, wp);
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchIo(argc, argv, "bench_memlat");
  // --scale multiplies the key-count sweep (the shared CI flag shrinks it);
  // the largest default size (2M keys -> a 64 MiB join table) sits past any
  // current LLC.
  const double scale = FlagOr(argc, argv, "scale", 1.0);
  const size_t runs = std::max<size_t>(1, SizeFlagOr(argc, argv, "runs", 3));
  const size_t pipelined_w = GlobalMemConfig().prefetch_window;

  Banner("Memory latency",
         "out-of-cache probe ns/op vs prefetch window (DRAMHiT-style sweep)");
  std::printf("hugepages=%d pipelined window=%zu (SQUID_HUGEPAGES / "
              "SQUID_PREFETCH_WINDOW to override)\n",
              static_cast<int>(GlobalMemConfig().hugepages), pipelined_w);
  TablePrinter table({"structure", "keys", "MiB", "no-prefetch (ns)",
                      "window8 (ns)", "pipelined (ns)", "speedup"});
  std::vector<size_t> sweep;
  for (size_t base : {size_t{1} << 15, size_t{1} << 17, size_t{1} << 19,
                      size_t{1} << 21}) {
    size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    sweep.push_back(std::max<size_t>(n, 4096));
  }
  for (size_t n : sweep) BenchJoinProbe(&table, n, runs, pipelined_w);
  for (size_t n : sweep) BenchCsrLookup(&table, n, runs, pipelined_w);
  for (size_t n : sweep) BenchGroupBy(&table, n, runs, pipelined_w);
  table.Print();
  return 0;
}
