// Observability overhead: what does it cost to leave metrics and tracing on?
//
// Three measurements, each a table in the --json output:
//  - recording overhead: ns/op of the metrics hot-path primitives
//    (LatencyHistogram::Record, Counter::Add, ScopedPhaseTimer) with the
//    global kill switch off vs on, at 1 and 4 recording threads. The
//    disabled path is the price every request pays when observability is
//    turned off (one relaxed load + branch); the enabled path must stay in
//    the low tens of ns or it has no business on the serve hot path.
//  - percentile sanity: a deterministic synthetic distribution recorded
//    into a histogram, reporting p50/p90/p99/max straight from the
//    snapshot — the quantile chain must be monotone.
//  - serve throughput: a closed-loop DiscoverSync pass on a real
//    SquidService with metrics disabled vs enabled (fresh service per
//    state, warm-up pass first), plus the server-side latency percentiles
//    the enabled run recorded.
//
// scripts/check_bench_trends.py (check_obs) gates all three: enabled
// recording within an absolute slack of disabled, p50 <= p99 <= max, and
// the metrics-on serve pass within a small factor of metrics-off.
//
// Flags: --scale=0.15 --requests=16 --runs=1 --json=<path>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/squid_service.h"

namespace squid {
namespace bench {
namespace {

/// Pre-generated value stream so the measured loop pays only the recording
/// primitive (plus one L1-resident load and a mask).
std::vector<uint64_t> SampleValues() {
  std::vector<uint64_t> values(4096);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (uint64_t& v : values) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = x >> 40;  // ~[0, 16M) — a plausible nanosecond latency range
  }
  return values;
}

/// Runs `op(value)` ops_per_thread times on each of `threads` threads and
/// returns wall-clock ns per op. With one thread this is plain serial cost;
/// with several it includes whatever contention the primitive admits.
template <typename Op>
double MeasureNsPerOp(size_t threads, size_t ops_per_thread, const Op& op) {
  const std::vector<uint64_t> values = SampleValues();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch timer;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      size_t i = t;  // stagger the streams so threads read different words
      for (size_t n = 0; n < ops_per_thread; ++n) {
        op(values[i & (values.size() - 1)]);
        ++i;
      }
    });
  }
  for (auto& w : workers) w.join();
  return timer.ElapsedSeconds() * 1e9 /
         static_cast<double>(threads * ops_per_thread);
}

/// Best-of-`runs` measurement (the minimum is the least-noise estimate on a
/// shared runner).
template <typename Op>
double BestNsPerOp(size_t runs, size_t threads, size_t ops_per_thread,
                   const Op& op) {
  double best = 0;
  for (size_t r = 0; r < runs; ++r) {
    double ns = MeasureNsPerOp(threads, ops_per_thread, op);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

struct PassResult {
  double seconds = 0;
  size_t answered = 0;
};

/// Closed loop: `clients` threads each drain their slice of the request
/// list, one in-flight request per client (same shape as
/// bench_serve_throughput).
PassResult RunPass(SquidService* service,
                   const std::vector<const std::vector<std::string>*>& requests,
                   size_t clients) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> answered{0};
  Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        auto result = service->DiscoverSync(*requests[i]);
        if (result.ok()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  PassResult out;
  out.seconds = timer.ElapsedSeconds();
  out.answered = answered.load();
  return out;
}

std::vector<std::vector<std::string>> BuildExampleSets(const ImdbBench& bench,
                                                       size_t distinct) {
  std::vector<std::vector<std::string>> sets;
  sets.push_back(
      {bench.data.manifest.costar_a, bench.data.manifest.costar_b});
  const char* ids[] = {"IQ1", "IQ6", "IQ13", "IQ15"};
  uint64_t seed = 101;
  while (sets.size() < distinct) {
    bool grew = false;
    for (const char* id : ids) {
      if (sets.size() >= distinct) break;
      auto query = FindQuery(bench.queries, id);
      if (!query.ok()) continue;
      auto truth = GroundTruth(*bench.data.db, *query.value());
      if (!truth.ok()) continue;
      Rng rng(seed++);
      auto examples = SampleExamples(truth.value(), 5, &rng);
      if (examples.size() >= 2) {
        sets.push_back(std::move(examples));
        grew = true;
      }
    }
    if (!grew) break;
  }
  return sets;
}

}  // namespace

void Run(int argc, char** argv) {
  InitBenchIo(argc, argv, "bench_obs");
  const double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  const size_t requests = SizeFlagOr(argc, argv, "requests", 16);
  const size_t runs = std::max<size_t>(1, SizeFlagOr(argc, argv, "runs", 3));
  const size_t ops = 1u << 20;

  const bool was_enabled = obs::MetricsEnabled();

  // --- recording overhead --------------------------------------------------
  Banner("Observability", "metrics hot-path cost, disabled vs enabled");
  std::printf("%zu ops/thread, best of %zu run(s)\n\n", ops, runs);

  obs::MetricsRegistry registry;
  obs::LatencyHistogram* hist = registry.GetHistogram("bench_record_ns");
  obs::Counter* counter = registry.GetCounter("bench_counter");
  obs::RequestTrace trace;

  TablePrinter overhead({"op", "threads", "disabled (ns)", "enabled (ns)"});
  const size_t thread_counts[] = {1, 4};
  for (size_t threads : thread_counts) {
    auto record = [&](uint64_t v) { hist->Record(v); };
    auto add = [&](uint64_t v) { counter->Add(v & 1); };
    obs::SetMetricsEnabled(false);
    const double record_off = BestNsPerOp(runs, threads, ops, record);
    const double add_off = BestNsPerOp(runs, threads, ops, add);
    obs::SetMetricsEnabled(true);
    const double record_on = BestNsPerOp(runs, threads, ops, record);
    const double add_on = BestNsPerOp(runs, threads, ops, add);
    // The phase timer's off state is a null trace (no clock read at all);
    // its on state pays two monotonic clock reads plus two relaxed adds.
    auto timer_off = [&](uint64_t) {
      obs::ScopedPhaseTimer t(nullptr, obs::Phase::kAbduction);
    };
    auto timer_on = [&](uint64_t) {
      obs::ScopedPhaseTimer t(&trace, obs::Phase::kAbduction);
    };
    const double phase_off = BestNsPerOp(runs, threads, ops / 4, timer_off);
    const double phase_on = BestNsPerOp(runs, threads, ops / 4, timer_on);
    overhead.AddRow({"histogram record", TablePrinter::Int(threads),
                     TablePrinter::Num(record_off, 2),
                     TablePrinter::Num(record_on, 2)});
    overhead.AddRow({"counter add", TablePrinter::Int(threads),
                     TablePrinter::Num(add_off, 2),
                     TablePrinter::Num(add_on, 2)});
    overhead.AddRow({"phase timer", TablePrinter::Int(threads),
                     TablePrinter::Num(phase_off, 2),
                     TablePrinter::Num(phase_on, 2)});
  }
  overhead.Print();

  // --- percentile sanity ---------------------------------------------------
  Banner("Observability", "snapshot percentiles on a synthetic distribution");
  obs::LatencyHistogram* ramp = registry.GetHistogram("bench_ramp_ns");
  obs::SetMetricsEnabled(true);
  // 1..1000 us ramp plus a 50 ms straggler: p50 near the middle of the
  // ramp, max pinned by the straggler.
  for (uint64_t i = 1; i <= 1000; ++i) ramp->Record(i * 1000);
  ramp->Record(50'000'000);
  const obs::HistogramSnapshot snap = ramp->Snapshot();
  TablePrinter percentiles(
      {"hist", "count", "p50 ns", "p90 ns", "p99 ns", "max ns"});
  percentiles.AddRow({"synthetic ramp", TablePrinter::Int(snap.count),
                      TablePrinter::Int(snap.ValueAtQuantile(0.50)),
                      TablePrinter::Int(snap.ValueAtQuantile(0.90)),
                      TablePrinter::Int(snap.ValueAtQuantile(0.99)),
                      TablePrinter::Int(snap.max)});
  percentiles.Print();

  // --- serve throughput, metrics off vs on --------------------------------
  Banner("Observability", "closed-loop serve pass, metrics disabled vs enabled");
  ImdbBench bench = BuildImdbBench(scale);
  std::printf("IMDb scale %.2f, %zu requests per pass\n\n", scale, requests);
  auto sets = BuildExampleSets(bench, 3);
  std::vector<const std::vector<std::string>*> request_list;
  request_list.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    request_list.push_back(&sets[i % sets.size()]);
  }

  TablePrinter serve({"threads", "requests", "metrics off (s)",
                      "metrics on (s)", "srv p50 ms", "srv p99 ms"});
  const size_t serve_threads[] = {1, 2};
  for (size_t threads : serve_threads) {
    // Fresh service + private registry per state so neither pass reads the
    // other's cache or histograms; a warm-up pass first so both measured
    // passes run cache-warm.
    auto measured_pass = [&](bool metrics_on, ServeStats* stats_out) {
      obs::SetMetricsEnabled(metrics_on);
      obs::MetricsRegistry service_registry;
      ServeOptions options;
      options.threads = threads;
      options.queue_capacity = 2 * threads;
      options.metrics = &service_registry;
      SquidService service(bench.adb.get(), options);
      PassResult warmup = RunPass(&service, request_list, threads);
      PassResult pass = RunPass(&service, request_list, threads);
      SQUID_CHECK(warmup.answered == requests && pass.answered == requests)
          << "obs serve bench requests failed";
      if (stats_out != nullptr) *stats_out = service.stats();
      return pass;
    };
    PassResult off = measured_pass(false, nullptr);
    ServeStats on_stats;
    PassResult on = measured_pass(true, &on_stats);
    serve.AddRow(
        {TablePrinter::Int(threads), TablePrinter::Int(requests),
         TablePrinter::Num(off.seconds, 4), TablePrinter::Num(on.seconds, 4),
         TablePrinter::Num(
             static_cast<double>(on_stats.request_ns.ValueAtQuantile(0.50)) /
                 1e6,
             3),
         TablePrinter::Num(
             static_cast<double>(on_stats.request_ns.ValueAtQuantile(0.99)) /
                 1e6,
             3)});
  }
  serve.Print();
  std::printf(
      "\nDisabled recording is one relaxed load + branch; enabled recording\n"
      "is a sharded relaxed fetch_add. The serve columns compare the same\n"
      "closed-loop pass with the global metrics switch off vs on.\n");

  obs::SetMetricsEnabled(was_enabled);
}

}  // namespace bench
}  // namespace squid

int main(int argc, char** argv) {
  squid::bench::Run(argc, argv);
  return 0;
}
