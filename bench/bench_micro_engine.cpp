// Engine micro-benchmarks (google-benchmark): the substrate operations the
// abduction path leans on — value comparison/hashing, index probes,
// executor joins and aggregation, inverted-index lookup, context discovery,
// and a full discovery round trip.

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "core/context_discovery.h"
#include "core/squid.h"
#include "datagen/imdb_generator.h"
#include "exec/executor.h"
#include "exec/join_hash.h"
#include "exec/tuple_buffer.h"
#include "sql/parser.h"
#include "storage/column_index.h"

namespace squid {
namespace {

/// Dataset scale for the singleton fixture; overridable with --scale= so CI
/// can run the suite at a tiny scale.
double g_fixture_scale = 0.12;

/// Singleton fixture: the generated dataset + αDB are expensive, build once.
struct MicroFixture {
  ImdbData data;
  std::unique_ptr<AbductionReadyDb> adb;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      ImdbOptions options;
      options.scale = g_fixture_scale;
      auto data = GenerateImdb(options);
      if (!data.ok()) std::abort();
      auto* f = new MicroFixture{std::move(data).value(), nullptr};
      auto adb = AbductionReadyDb::Build(*f->data.db);
      if (!adb.ok()) std::abort();
      f->adb = std::move(adb).value();
      return f;
    }();
    return *fixture;
  }
};

void BM_ValueCompare(benchmark::State& state) {
  Value a(static_cast<int64_t>(42)), b(43.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompare);

void BM_ValueHashString(benchmark::State& state) {
  Value v("some moderately long string value");
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHashString);

void BM_HashIndexProbe(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* castinfo = f.data.db->GetTable("castinfo").value();
  static auto index = HashColumnIndex::Build(*castinfo, "person_id").value();
  int64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(Value(key)));
    key = key % 500 + 1;
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_SortedIndexRange(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* movie = f.data.db->GetTable("movie").value();
  static auto index = SortedColumnIndex::Build(*movie, "year").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Range(Value(static_cast<int64_t>(2000)),
                                         Value(static_cast<int64_t>(2010))));
  }
}
BENCHMARK(BM_SortedIndexRange);

void BM_InvertedIndexLookup(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const std::string name = f.data.manifest.costar_a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookup);

void BM_InvertedIndexLookupMixedCase(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  std::string name = f.data.manifest.costar_a;
  for (char& c : name) c = (c % 2) ? StringPool::FoldChar(c) : c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookupMixedCase);

void BM_InvertedIndexLookupMiss(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const std::string name = "No Such Person Anywhere";
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookupMiss);

void BM_StringPoolFindFolded(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const StringPool& pool = *f.data.db->pool();
  const std::string name = f.data.manifest.costar_a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.FindFolded(name));
  }
}
BENCHMARK(BM_StringPoolFindFolded);

/// The repeat-join probe workload: castinfo.person_id is the FK column the
/// IMDb benchmark queries hash-join over and over. BM_JoinProbe is the
/// vectorized pipeline (FlatJoinHash + batched packed keys); the
/// *PerTupleBaseline twin is the chaining-unordered_map per-tuple probe the
/// executor used before the TupleBuffer rewrite.
void BM_JoinProbe(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* castinfo = f.data.db->GetTable("castinfo").value();
  const Column& col = *castinfo->ColumnByName("person_id").value();
  std::vector<uint32_t> rows(castinfo->num_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  const FlatJoinHash hash = FlatJoinHash::Build(col, rows);

  const Table* person = f.data.db->GetTable("person").value();
  constexpr size_t kChunk = 1024;
  constexpr size_t kStream = 256 * kChunk;  // rotate so probes stay cold
  std::vector<uint64_t> keys(kStream);
  std::vector<uint8_t> valid(kStream, 1);
  // Scattered probes over the full person-id range, like a real FK join.
  for (size_t i = 0; i < kStream; ++i) {
    keys[i] = (i * 2654435761u) % person->num_rows() + 1;
  }
  std::vector<FlatJoinHash::RowSpan> spans(kChunk);
  size_t matches = 0;
  size_t base = 0;
  for (auto _ : state) {
    hash.ProbeBatch(keys.data() + base, valid.data() + base, kChunk,
                    spans.data());
    for (const auto& span : spans) matches += span.size;
    benchmark::DoNotOptimize(matches);
    base = (base + kChunk) % kStream;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kChunk));
}
BENCHMARK(BM_JoinProbe);

void BM_JoinProbePerTupleBaseline(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* castinfo = f.data.db->GetTable("castinfo").value();
  const Column& col = *castinfo->ColumnByName("person_id").value();
  std::unordered_map<uint64_t, std::vector<uint32_t>> hash;
  hash.reserve(castinfo->num_rows());
  uint64_t key = 0;
  for (uint32_t r = 0; r < castinfo->num_rows(); ++r) {
    if (PackCellKey(col, r, &key)) hash[key].push_back(r);
  }

  const Table* person = f.data.db->GetTable("person").value();
  constexpr size_t kChunk = 1024;
  constexpr size_t kStream = 256 * kChunk;
  std::vector<uint64_t> keys(kStream);
  for (size_t i = 0; i < kStream; ++i) {
    keys[i] = (i * 2654435761u) % person->num_rows() + 1;
  }
  size_t matches = 0;
  size_t base = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kChunk; ++i) {
      auto it = hash.find(keys[base + i]);
      if (it != hash.end()) matches += it->second.size();
    }
    benchmark::DoNotOptimize(matches);
    base = (base + kChunk) % kStream;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kChunk));
}
BENCHMARK(BM_JoinProbePerTupleBaseline);

/// Tuple expansion: widening 4096 three-wide tuples by one join match each.
/// Columnar = TupleBuffer::AppendExpanded (flat gathers); the baseline
/// copies one heap vector per tuple, as the old executor did.
void BM_TupleExpand(benchmark::State& state) {
  constexpr size_t kTuples = 4096;
  std::vector<uint32_t> ids(kTuples);
  std::iota(ids.begin(), ids.end(), 0u);
  TupleBuffer src;
  src.InitSingle(ids);
  std::vector<uint32_t> sel(kTuples);
  std::iota(sel.begin(), sel.end(), 0u);
  for (int widen = 0; widen < 2; ++widen) {  // three columns total
    TupleBuffer next;
    next.InitEmpty(src.width() + 1, kTuples);
    next.AppendExpanded(src, sel.data(), ids.data(), kTuples);
    src = std::move(next);
  }
  for (auto _ : state) {
    TupleBuffer out;
    out.InitEmpty(src.width() + 1, kTuples);
    out.AppendExpanded(src, sel.data(), ids.data(), kTuples);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kTuples));
}
BENCHMARK(BM_TupleExpand);

void BM_TupleExpandPerTupleBaseline(benchmark::State& state) {
  constexpr size_t kTuples = 4096;
  std::vector<std::vector<uint32_t>> src(kTuples,
                                         std::vector<uint32_t>{1, 2, 3});
  for (auto _ : state) {
    std::vector<std::vector<uint32_t>> out;
    out.reserve(kTuples);
    for (const auto& t : src) {
      auto nt = t;
      nt.push_back(7);
      out.push_back(std::move(nt));
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kTuples));
}
BENCHMARK(BM_TupleExpandPerTupleBaseline);

void BM_ExecutorSPJ(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  auto query = ParseQuery(
                   "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                   "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                   "m.year BETWEEN 2000 AND 2005")
                   .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteQuery(*f.data.db, query));
  }
}
BENCHMARK(BM_ExecutorSPJ);

void BM_ExecutorGroupByHaving(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  auto query = ParseQuery(
                   "SELECT p.name FROM person p, castinfo c WHERE "
                   "c.person_id = p.id GROUP BY p.id HAVING count(*) >= 10")
                   .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteQuery(*f.data.db, query));
  }
}
BENCHMARK(BM_ExecutorGroupByHaving);

void BM_ContextDiscovery(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  SquidConfig config;
  std::vector<Value> keys = {Value(static_cast<int64_t>(1)),
                             Value(static_cast<int64_t>(2)),
                             Value(static_cast<int64_t>(3))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverContexts(*f.adb, "person", keys, config));
  }
}
BENCHMARK(BM_ContextDiscovery);

void BM_EndToEndDiscover(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  Squid squid(f.adb.get());
  std::vector<std::string> examples = {f.data.manifest.costar_a,
                                       f.data.manifest.costar_b};
  for (auto _ : state) {
    benchmark::DoNotOptimize(squid.Discover(examples));
  }
}
BENCHMARK(BM_EndToEndDiscover);

}  // namespace
}  // namespace squid

/// Custom main: supports --scale=<s> (fixture dataset scale; CI uses a tiny
/// one) and --json=<path> (mapped onto google-benchmark's JSON reporter, so
/// all bench binaries share one flag). --benchmark_* flags pass through;
/// other figure-bench flags (e.g. --runs=, --threads= from run_benches.sh's
/// SQUID_BENCH_ARGS) are ignored rather than rejected.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;  // keeps rewritten flags alive
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      storage.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      storage.push_back("--benchmark_out_format=json");
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      squid::g_fixture_scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      args.push_back(argv[i]);
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
