// Engine micro-benchmarks (google-benchmark): the substrate operations the
// abduction path leans on — value comparison/hashing, index probes,
// executor joins and aggregation, inverted-index lookup, context discovery,
// and a full discovery round trip.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "adb/abduction_ready_db.h"
#include "core/context_discovery.h"
#include "core/squid.h"
#include "datagen/imdb_generator.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/column_index.h"

namespace squid {
namespace {

/// Dataset scale for the singleton fixture; overridable with --scale= so CI
/// can run the suite at a tiny scale.
double g_fixture_scale = 0.12;

/// Singleton fixture: the generated dataset + αDB are expensive, build once.
struct MicroFixture {
  ImdbData data;
  std::unique_ptr<AbductionReadyDb> adb;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      ImdbOptions options;
      options.scale = g_fixture_scale;
      auto data = GenerateImdb(options);
      if (!data.ok()) std::abort();
      auto* f = new MicroFixture{std::move(data).value(), nullptr};
      auto adb = AbductionReadyDb::Build(*f->data.db);
      if (!adb.ok()) std::abort();
      f->adb = std::move(adb).value();
      return f;
    }();
    return *fixture;
  }
};

void BM_ValueCompare(benchmark::State& state) {
  Value a(static_cast<int64_t>(42)), b(43.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompare);

void BM_ValueHashString(benchmark::State& state) {
  Value v("some moderately long string value");
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHashString);

void BM_HashIndexProbe(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* castinfo = f.data.db->GetTable("castinfo").value();
  static auto index = HashColumnIndex::Build(*castinfo, "person_id").value();
  int64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(Value(key)));
    key = key % 500 + 1;
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_SortedIndexRange(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const Table* movie = f.data.db->GetTable("movie").value();
  static auto index = SortedColumnIndex::Build(*movie, "year").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Range(Value(static_cast<int64_t>(2000)),
                                         Value(static_cast<int64_t>(2010))));
  }
}
BENCHMARK(BM_SortedIndexRange);

void BM_InvertedIndexLookup(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const std::string name = f.data.manifest.costar_a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookup);

void BM_InvertedIndexLookupMixedCase(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  std::string name = f.data.manifest.costar_a;
  for (char& c : name) c = (c % 2) ? StringPool::FoldChar(c) : c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookupMixedCase);

void BM_InvertedIndexLookupMiss(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const std::string name = "No Such Person Anywhere";
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adb->inverted_index().Lookup(name));
  }
}
BENCHMARK(BM_InvertedIndexLookupMiss);

void BM_StringPoolFindFolded(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  const StringPool& pool = *f.data.db->pool();
  const std::string name = f.data.manifest.costar_a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.FindFolded(name));
  }
}
BENCHMARK(BM_StringPoolFindFolded);

void BM_ExecutorSPJ(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  auto query = ParseQuery(
                   "SELECT DISTINCT p.name FROM person p, castinfo c, movie m "
                   "WHERE c.person_id = p.id AND c.movie_id = m.id AND "
                   "m.year BETWEEN 2000 AND 2005")
                   .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteQuery(*f.data.db, query));
  }
}
BENCHMARK(BM_ExecutorSPJ);

void BM_ExecutorGroupByHaving(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  auto query = ParseQuery(
                   "SELECT p.name FROM person p, castinfo c WHERE "
                   "c.person_id = p.id GROUP BY p.id HAVING count(*) >= 10")
                   .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteQuery(*f.data.db, query));
  }
}
BENCHMARK(BM_ExecutorGroupByHaving);

void BM_ContextDiscovery(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  SquidConfig config;
  std::vector<Value> keys = {Value(static_cast<int64_t>(1)),
                             Value(static_cast<int64_t>(2)),
                             Value(static_cast<int64_t>(3))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverContexts(*f.adb, "person", keys, config));
  }
}
BENCHMARK(BM_ContextDiscovery);

void BM_EndToEndDiscover(benchmark::State& state) {
  auto& f = MicroFixture::Get();
  Squid squid(f.adb.get());
  std::vector<std::string> examples = {f.data.manifest.costar_a,
                                       f.data.manifest.costar_b};
  for (auto _ : state) {
    benchmark::DoNotOptimize(squid.Discover(examples));
  }
}
BENCHMARK(BM_EndToEndDiscover);

}  // namespace
}  // namespace squid

/// Custom main: supports --scale=<s> (fixture dataset scale; CI uses a tiny
/// one) and --json=<path> (mapped onto google-benchmark's JSON reporter, so
/// all bench binaries share one flag). --benchmark_* flags pass through;
/// other figure-bench flags (e.g. --runs=, --threads= from run_benches.sh's
/// SQUID_BENCH_ARGS) are ignored rather than rejected.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;  // keeps rewritten flags alive
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      storage.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      storage.push_back("--benchmark_out_format=json");
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      squid::g_fixture_scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      args.push_back(argv[i]);
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
