// TCP serve front end: closed- and open-loop latency/throughput sweeps
// against a real socket server (src/net/), measuring what the in-process
// serve bench cannot — framing cost, event-loop scheduling, and the
// load-shedding contract under overload.
//
//  - closed loop: one connection per worker thread, each waiting for its
//    answer before sending the next request. Arrival rate adapts to service
//    rate, so nothing is shed; this is the latency baseline.
//  - open loop: one connection pipelines the whole request list at once
//    (arrival rate >> drain rate) against a deliberately tiny request
//    queue. The server MUST shed: accepted requests keep bounded latency
//    (the queue caps how much work waits ahead of any admitted request)
//    while the excess is answered `overloaded` immediately.
//
// scripts/check_bench_trends.py (check_net_serve) asserts the shape: the
// open-loop run sheds (rejected > 0), every request is answered one way or
// the other, and accepted-request p99 stays within a generous multiple of
// the closed-loop p99 — unbounded queueing would blow that bound.
//
// Flags: --scale=0.25 --requests=24 --open-requests=96 --json=<path>

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"
#include "serve/squid_service.h"

namespace squid {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::vector<std::string>> BuildExampleSets(const ImdbBench& bench,
                                                       size_t distinct) {
  std::vector<std::vector<std::string>> sets;
  sets.push_back(
      {bench.data.manifest.costar_a, bench.data.manifest.costar_b});
  const char* ids[] = {"IQ1", "IQ6", "IQ13", "IQ15"};
  uint64_t seed = 101;
  while (sets.size() < distinct) {
    bool grew = false;
    for (const char* id : ids) {
      if (sets.size() >= distinct) break;
      auto query = FindQuery(bench.queries, id);
      if (!query.ok()) continue;
      auto truth = GroundTruth(*bench.data.db, *query.value());
      if (!truth.ok()) continue;
      Rng rng(seed++);
      auto examples = SampleExamples(truth.value(), 5, &rng);
      if (examples.size() >= 2) {
        sets.push_back(std::move(examples));
        grew = true;
      }
    }
    if (!grew) break;
  }
  return sets;
}

double PercentileMs(std::vector<double> latencies_ms, double p) {
  if (latencies_ms.empty()) return 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double rank = p * static_cast<double>(latencies_ms.size() - 1);
  return latencies_ms[static_cast<size_t>(rank + 0.5)];
}

struct SweepResult {
  size_t accepted = 0;
  size_t rejected = 0;
  double seconds = 0;
  std::vector<double> accepted_ms;  // send-to-reply latency of ok answers
};

/// Closed loop: `clients` connections, each draining its slice of the
/// request list with exactly one request in flight.
SweepResult RunClosed(uint16_t port,
                      const std::vector<const std::vector<std::string>*>& requests,
                      size_t clients) {
  std::vector<net::TcpClient> conns;
  for (size_t c = 0; c < clients; ++c) {
    auto client = net::TcpClient::Connect("127.0.0.1", port);
    SQUID_CHECK(client.ok()) << client.status().ToString();
    conns.push_back(std::move(client).value());
  }
  std::vector<SweepResult> per_client(clients);
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SweepResult& mine = per_client[c];
      for (size_t i = c; i < requests.size(); i += clients) {
        const Clock::time_point sent = Clock::now();
        auto reply = conns[c].Discover(*requests[i]);
        SQUID_CHECK(reply.ok()) << reply.status().ToString();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        if (reply.value().kind == net::Reply::Kind::kOk) {
          ++mine.accepted;
          mine.accepted_ms.push_back(ms);
        } else {
          ++mine.rejected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  SweepResult out;
  out.seconds = timer.ElapsedSeconds();
  for (SweepResult& part : per_client) {
    out.accepted += part.accepted;
    out.rejected += part.rejected;
    out.accepted_ms.insert(out.accepted_ms.end(), part.accepted_ms.begin(),
                           part.accepted_ms.end());
  }
  return out;
}

/// Open loop: one connection sends every request back to back (the arrival
/// process ignores the service rate), then collects all replies.
SweepResult RunOpen(uint16_t port,
                    const std::vector<const std::vector<std::string>*>& requests) {
  auto client = net::TcpClient::Connect("127.0.0.1", port);
  SQUID_CHECK(client.ok()) << client.status().ToString();
  std::vector<Clock::time_point> sent(requests.size() + 1);
  std::vector<uint64_t> ids(requests.size());
  Stopwatch timer;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto id = client.value().SendDiscover(*requests[i]);
    SQUID_CHECK(id.ok()) << id.status().ToString();
    ids[i] = id.value();
    sent[id.value()] = Clock::now();
  }
  SweepResult out;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto reply = client.value().ReadReply();
    SQUID_CHECK(reply.ok()) << reply.status().ToString();
    const uint64_t id = reply.value().request_id;
    SQUID_CHECK(id >= 1 && id <= requests.size()) << "unknown reply id";
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - sent[id])
            .count();
    if (reply.value().kind == net::Reply::Kind::kOk) {
      ++out.accepted;
      out.accepted_ms.push_back(ms);
    } else {
      SQUID_CHECK(reply.value().kind == net::Reply::Kind::kOverloaded)
          << "open-loop reply was neither ok nor overloaded";
      ++out.rejected;
    }
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

void Run(int argc, char** argv) {
  InitBenchIo(argc, argv, "bench_net_serve");
  const double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  const size_t requests = SizeFlagOr(argc, argv, "requests", 24);
  const size_t open_requests = SizeFlagOr(argc, argv, "open-requests", 96);

  ImdbBench bench = BuildImdbBench(scale);
  Banner("Net serve", "socket front end: closed- and open-loop sweeps");
  std::printf("IMDb scale %.2f, %zu closed / %zu open requests\n\n", scale,
              requests, open_requests);

  auto sets = BuildExampleSets(bench, 4);
  auto request_list = [&](size_t n) {
    std::vector<const std::vector<std::string>*> list;
    list.reserve(n);
    for (size_t i = 0; i < n; ++i) list.push_back(&sets[i % sets.size()]);
    return list;
  };

  // The p50/p99 columns are client-side (send to reply over the socket);
  // the srv columns are the server's own admission-to-answer histogram and
  // queue-wait p99, read from the service's private metrics registry — the
  // gap between the two is framing + socket + event-loop time.
  TablePrinter table({"mode", "threads", "queue", "requests", "accepted",
                      "rejected", "seconds", "req/s", "p50 ms", "p99 ms",
                      "srv p50 ms", "srv p99 ms", "srv qw p99 ms"});
  const size_t thread_counts[] = {1, 2};
  for (size_t threads : thread_counts) {
    // Closed loop: ample queue, arrivals gated on answers — no shedding.
    {
      obs::MetricsRegistry registry;
      ServeOptions options;
      options.threads = threads;
      options.queue_capacity = 64;
      options.metrics = &registry;
      SquidService service(bench.adb.get(), options);
      net::TcpServer server(&service);
      Status started = server.Start();
      SQUID_CHECK(started.ok()) << started.ToString();
      auto list = request_list(requests);
      SweepResult r = RunClosed(server.port(), list, threads);
      server.Stop();
      ServeStats srv = service.stats();
      SQUID_CHECK(r.accepted == requests && r.rejected == 0)
          << "closed loop shed requests (" << r.rejected << " rejected)";
      table.AddRow({"closed", TablePrinter::Int(threads),
                    TablePrinter::Int(options.queue_capacity),
                    TablePrinter::Int(requests),
                    TablePrinter::Int(r.accepted),
                    TablePrinter::Int(r.rejected),
                    TablePrinter::Num(r.seconds, 4),
                    TablePrinter::Num(r.accepted / r.seconds, 1),
                    TablePrinter::Num(PercentileMs(r.accepted_ms, 0.50), 2),
                    TablePrinter::Num(PercentileMs(r.accepted_ms, 0.99), 2),
                    TablePrinter::Num(srv.RequestP50Ns() / 1e6, 2),
                    TablePrinter::Num(srv.RequestP99Ns() / 1e6, 2),
                    TablePrinter::Num(srv.QueueWaitP99Ns() / 1e6, 2)});
    }
    // Open loop: tiny queue, the whole list pipelined at once — the server
    // must shed the excess while accepted latency stays queue-bounded.
    {
      obs::MetricsRegistry registry;
      ServeOptions options;
      options.threads = threads;
      options.queue_capacity = 2;
      options.metrics = &registry;
      SquidService service(bench.adb.get(), options);
      net::TcpServer server(&service);
      Status started = server.Start();
      SQUID_CHECK(started.ok()) << started.ToString();
      auto list = request_list(open_requests);
      SweepResult r = RunOpen(server.port(), list);
      net::TcpServerStats net_stats = server.stats();
      server.Stop();
      ServeStats srv = service.stats();
      SQUID_CHECK(r.accepted + r.rejected == open_requests)
          << "open loop lost replies";
      SQUID_CHECK(net_stats.rejected_overload == r.rejected)
          << "server shed count disagrees with overloaded replies";
      table.AddRow({"open", TablePrinter::Int(threads),
                    TablePrinter::Int(options.queue_capacity),
                    TablePrinter::Int(open_requests),
                    TablePrinter::Int(r.accepted),
                    TablePrinter::Int(r.rejected),
                    TablePrinter::Num(r.seconds, 4),
                    TablePrinter::Num(r.accepted / r.seconds, 1),
                    TablePrinter::Num(PercentileMs(r.accepted_ms, 0.50), 2),
                    TablePrinter::Num(PercentileMs(r.accepted_ms, 0.99), 2),
                    TablePrinter::Num(srv.RequestP50Ns() / 1e6, 2),
                    TablePrinter::Num(srv.RequestP99Ns() / 1e6, 2),
                    TablePrinter::Num(srv.QueueWaitP99Ns() / 1e6, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nClosed loop: one connection per worker, one request in flight each\n"
      "(nothing shed). Open loop: every request pipelined at once against a\n"
      "queue of 2 — the overloaded rows show load shedding keeping accepted\n"
      "latency bounded instead of queueing without limit.\n");
}

}  // namespace bench
}  // namespace squid

int main(int argc, char** argv) {
  squid::bench::Run(argc, argv);
  return 0;
}
