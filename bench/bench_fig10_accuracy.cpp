// Regenerates Fig. 10: precision / recall / f-score vs number of examples
// for every IMDb and DBLP benchmark query (seeded example draws from the
// ground-truth output, averaged over several runs).
// Expected shape: accuracy rises quickly with |E| for most queries; IQ10
// stays poor (its compound aggregate intent is outside SQuID's family) and
// IQ3 misses the weak "appeared >= 1 time as actress" association under the
// default τa.

#include "bench/bench_util.h"
#include "core/squid.h"

using namespace squid;
using namespace squid::bench;

namespace {

void RunDataset(const char* label, const Database& db, const AbductionReadyDb& adb,
                const std::vector<BenchmarkQuery>& queries, size_t runs) {
  const std::vector<size_t> sizes = {5, 10, 15, 20, 25};
  std::printf("\n-- %s --\n", label);
  TablePrinter table({"query", "#examples", "precision", "recall", "f-score"});
  SquidConfig config;
  for (const auto& query : queries) {
    auto truth = GroundTruth(db, query);
    if (!truth.ok()) continue;
    for (size_t n : sizes) {
      if (n > truth.value().num_rows()) break;
      auto point = AccuracyAtSize(adb, config, truth.value(), n, runs,
                                  /*seed=*/500 + n);
      if (!point.ok()) continue;
      table.AddRow({query.id, TablePrinter::Int(n),
                    TablePrinter::Num(point.value().metrics.precision),
                    TablePrinter::Num(point.value().metrics.recall),
                    TablePrinter::Num(point.value().metrics.fscore)});
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig10_accuracy");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t runs = static_cast<size_t>(FlagOr(argc, argv, "runs", 3));

  Banner("Figure 10", "accuracy vs #examples per benchmark query");
  ImdbBench imdb = BuildImdbBench(scale);
  RunDataset("IMDb (IQ1-IQ16)", *imdb.data.db, *imdb.adb, imdb.queries, runs);

  DblpBench dblp = BuildDblpBench();
  RunDataset("DBLP (DQ1-DQ5)", *dblp.data.db, *dblp.adb, dblp.queries, runs);
  return 0;
}
