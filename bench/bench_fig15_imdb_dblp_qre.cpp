// Regenerates Fig. 15: query reverse engineering on IMDb and DBLP —
// #predicates, discovery time, and f-score for SQuID (optimistic preset,
// full output as examples) vs the TALOS-style decision-tree baseline.
// Expected shape: SQuID's queries are orders of magnitude smaller and its
// f-score at least matches TALOS on most queries; TALOS suffers on
// IQ1-style intents (label propagation over the denormalized join).

#include "bench/bench_util.h"
#include "baselines/talos.h"
#include "common/stopwatch.h"
#include "core/squid.h"
#include "exec/executor.h"

using namespace squid;
using namespace squid::bench;

namespace {

void RunDataset(const char* label, const Database& db, const AbductionReadyDb& adb,
                const std::vector<BenchmarkQuery>& queries) {
  std::printf("\n-- %s --\n", label);
  TablePrinter table({"query", "card", "actual #pred", "SQuID #pred",
                      "TALOS #pred", "SQuID time (s)", "TALOS time (s)",
                      "SQuID f", "TALOS f"});
  for (const auto& query : queries) {
    auto truth = GroundTruth(db, query);
    if (!truth.ok()) continue;
    std::unordered_set<std::string> intended = ToStringSet(truth.value());

    std::vector<std::string> examples;
    for (const Value& v : truth.value().ColumnValues(0)) {
      examples.push_back(v.ToString());
    }
    SquidConfig config = SquidConfig::Optimistic();
    Stopwatch squid_timer;
    Squid squid(&adb, config);
    auto abduced = squid.Discover(examples);
    double squid_seconds = squid_timer.ElapsedSeconds();
    size_t squid_preds = 0;
    Metrics squid_metrics;
    if (abduced.ok()) {
      squid_preds = abduced.value().original_query.NumPredicates();
      auto rs = ExecuteQuery(adb.database(), abduced.value().adb_query);
      if (rs.ok()) squid_metrics = ComputeMetrics(intended, ToStringSet(rs.value()));
    }

    std::vector<Value> keys = GroundTruthKeys(db, query);
    auto talos = RunTalos(adb, query.entity_relation, keys);
    size_t talos_preds = 0;
    double talos_seconds = 0;
    Metrics talos_metrics;
    if (talos.ok()) {
      talos_preds = talos.value().num_predicates;
      talos_seconds = talos.value().seconds;
      std::unordered_set<std::string> intended_keys, predicted_keys;
      for (const Value& v : keys) intended_keys.insert(v.ToString());
      for (const Value& v : talos.value().predicted_keys) {
        predicted_keys.insert(v.ToString());
      }
      talos_metrics = ComputeMetrics(intended_keys, predicted_keys);
    }

    table.AddRow({query.id, TablePrinter::Int(truth.value().num_rows()),
                  TablePrinter::Int(query.query.NumPredicates()),
                  TablePrinter::Int(squid_preds), TablePrinter::Int(talos_preds),
                  TablePrinter::Num(squid_seconds, 3),
                  TablePrinter::Num(talos_seconds, 3),
                  TablePrinter::Num(squid_metrics.fscore, 2),
                  TablePrinter::Num(talos_metrics.fscore, 2)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig15_imdb_dblp_qre");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  Banner("Figure 15", "QRE on IMDb and DBLP: SQuID vs TALOS");
  ImdbBench imdb = BuildImdbBench(scale);
  RunDataset("IMDb", *imdb.data.db, *imdb.adb, imdb.queries);
  DblpBench dblp = BuildDblpBench();
  RunDataset("DBLP", *dblp.data.db, *dblp.adb, dblp.queries);
  return 0;
}
