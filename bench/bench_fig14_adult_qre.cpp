// Regenerates Fig. 14: query reverse engineering on the Adult dataset.
// Both systems receive the ENTIRE query output (closed world); SQuID runs
// with the optimistic QRE preset (§7.5). Expected shape: both reach
// f-score 1 on most queries, SQuID emits far fewer predicates (often by
// orders of magnitude), and SQuID is faster at small input cardinalities
// while TALOS catches up on the largest ones.

#include "bench/bench_util.h"
#include "baselines/talos.h"
#include "common/stopwatch.h"
#include "core/squid.h"
#include "exec/executor.h"

using namespace squid;
using namespace squid::bench;

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig14_adult_qre");
  size_t rows = static_cast<size_t>(FlagOr(argc, argv, "rows", kAdultBenchRows));
  Banner("Figure 14", "QRE on Adult: #predicates and discovery time");

  AdultBench bench = BuildAdultBench(rows);
  TablePrinter table({"query", "cardinality", "actual #pred", "SQuID #pred",
                      "TALOS #pred", "SQuID time (s)", "TALOS time (s)",
                      "SQuID f", "TALOS f"});

  for (const auto& query : bench.queries) {
    auto truth = GroundTruth(*bench.db, query);
    if (!truth.ok()) continue;
    std::unordered_set<std::string> intended = ToStringSet(truth.value());

    // SQuID: all output names as examples, optimistic preset.
    std::vector<std::string> examples;
    for (const Value& v : truth.value().ColumnValues(0)) {
      examples.push_back(v.ToString());
    }
    SquidConfig config = SquidConfig::Optimistic();
    Stopwatch squid_timer;
    Squid squid(bench.adb.get(), config);
    auto abduced = squid.Discover(examples);
    double squid_seconds = squid_timer.ElapsedSeconds();
    size_t squid_preds = 0;
    Metrics squid_metrics;
    if (abduced.ok()) {
      squid_preds = abduced.value().original_query.NumPredicates();
      auto rs = ExecuteQuery(bench.adb->database(), abduced.value().adb_query);
      if (rs.ok()) squid_metrics = ComputeMetrics(intended, ToStringSet(rs.value()));
    }

    // TALOS: intended keys, decision tree to purity.
    std::vector<Value> keys = GroundTruthKeys(*bench.db, query);
    auto talos = RunTalos(*bench.adb, query.entity_relation, keys);
    size_t talos_preds = 0;
    double talos_seconds = 0;
    Metrics talos_metrics;
    if (talos.ok()) {
      talos_preds = talos.value().num_predicates;
      talos_seconds = talos.value().seconds;
      std::unordered_set<std::string> intended_keys, predicted_keys;
      for (const Value& v : keys) intended_keys.insert(v.ToString());
      for (const Value& v : talos.value().predicted_keys) {
        predicted_keys.insert(v.ToString());
      }
      talos_metrics = ComputeMetrics(intended_keys, predicted_keys);
    }

    table.AddRow({query.id, TablePrinter::Int(truth.value().num_rows()),
                  TablePrinter::Int(query.query.NumPredicates()),
                  TablePrinter::Int(squid_preds), TablePrinter::Int(talos_preds),
                  TablePrinter::Num(squid_seconds, 3),
                  TablePrinter::Num(talos_seconds, 3),
                  TablePrinter::Num(squid_metrics.fscore, 2),
                  TablePrinter::Num(talos_metrics.fscore, 2)});
  }
  table.Print();
  return 0;
}
