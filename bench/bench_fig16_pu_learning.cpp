// Regenerates Fig. 16: comparison with Positive-and-Unlabeled learning on
// the Adult queries.
//  (a) accuracy vs fraction of the positive data given as examples, for
//      SQuID and PU-learning with decision-tree / random-forest estimators.
//  (b) total time vs dataset scale factor (replicated Adult).
// Expected shape: PU-learning needs a large fraction (>~70%) of the
// positives to match SQuID; its runtime grows linearly with data size while
// SQuID's abduction time stays nearly flat (it touches only the aDB
// statistics, not the unlabeled rows).

#include <unordered_set>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/squid.h"
#include "exec/executor.h"
#include "ml/pu_learning.h"

using namespace squid;
using namespace squid::bench;

namespace {

/// Runs PU-learning for one query: trains on `fraction` of the positive rows
/// and classifies the whole relation.
Result<Metrics> RunPu(const Database& db, const BenchmarkQuery& query,
                      PuEstimator estimator, double fraction, Rng* rng,
                      double* seconds) {
  SQUID_ASSIGN_OR_RETURN(const Table* adult, db.GetTable("adult"));
  SQUID_ASSIGN_OR_RETURN(MlDataset data, MlDataset::FromTable(*adult, {"id", "name"}));

  // Positive rows = ground-truth matches, found by name.
  auto truth = GroundTruth(db, query);
  if (!truth.ok()) return truth.status();
  std::unordered_set<std::string> intended = ToStringSet(truth.value());
  SQUID_ASSIGN_OR_RETURN(const Column* names, adult->ColumnByName("name"));
  std::vector<size_t> positive_rows, all_rows;
  for (size_t r = 0; r < adult->num_rows(); ++r) {
    all_rows.push_back(r);
    if (intended.count(std::string(names->StringAt(r)))) positive_rows.push_back(r);
  }
  if (positive_rows.size() < 4) return Status::Internal("too few positives");

  // Sample the labeled fraction uniformly at random (the Elkan–Noto SCAR
  // assumption the experiment setting satisfies, §7.6).
  size_t labeled = std::max<size_t>(
      2, static_cast<size_t>(fraction * static_cast<double>(positive_rows.size())));
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(positive_rows.size(), labeled);
  std::vector<size_t> labeled_rows;
  for (size_t i : picks) labeled_rows.push_back(positive_rows[i]);

  PuOptions options;
  options.estimator = estimator;
  Stopwatch timer;
  SQUID_ASSIGN_OR_RETURN(PuLearner learner,
                         PuLearner::Train(data, labeled_rows, all_rows, options, rng));
  std::unordered_set<std::string> predicted;
  for (size_t r : all_rows) {
    if (learner.Predict(data, r)) predicted.emplace(names->StringAt(r));
  }
  *seconds = timer.ElapsedSeconds();
  return ComputeMetrics(intended, predicted);
}

/// SQuID with a fraction of the output as examples.
Result<Metrics> RunSquidFraction(const AbductionReadyDb& adb, const Database& db,
                                 const BenchmarkQuery& query, double fraction,
                                 Rng* rng, double* seconds) {
  auto truth = GroundTruth(db, query);
  if (!truth.ok()) return truth.status();
  std::unordered_set<std::string> intended = ToStringSet(truth.value());
  size_t n = std::max<size_t>(
      2, static_cast<size_t>(fraction * static_cast<double>(truth.value().num_rows())));
  auto examples = SampleExamples(truth.value(), n, rng);
  SquidConfig config = SquidConfig::Optimistic();
  Stopwatch timer;
  Squid squid(&adb, config);
  SQUID_ASSIGN_OR_RETURN(AbducedQuery abduced, squid.Discover(examples));
  SQUID_ASSIGN_OR_RETURN(ResultSet rs,
                         ExecuteQuery(adb.database(), abduced.adb_query));
  *seconds = timer.ElapsedSeconds();
  return ComputeMetrics(intended, ToStringSet(rs));
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig16_pu_learning");
  size_t rows = static_cast<size_t>(FlagOr(argc, argv, "rows", 4000));
  size_t num_queries = static_cast<size_t>(FlagOr(argc, argv, "queries", 8));
  Banner("Figure 16(a)", "accuracy vs fraction of positives (Adult)");

  AdultBench bench = BuildAdultBench(rows);
  const std::vector<double> fractions = {0.1, 0.4, 0.7, 1.0};

  TablePrinter table({"fraction", "SQuID P", "SQuID R", "SQuID F", "PU(DT) P",
                      "PU(DT) R", "PU(DT) F", "PU(RF) P", "PU(RF) R", "PU(RF) F"});
  for (double fraction : fractions) {
    std::vector<Metrics> squid_m, dt_m, rf_m;
    for (size_t qi = 0; qi < std::min(num_queries, bench.queries.size()); ++qi) {
      const BenchmarkQuery& query = bench.queries[qi];
      Rng rng(2024 + qi);
      double seconds = 0;
      auto s = RunSquidFraction(*bench.adb, *bench.db, query, fraction, &rng,
                                &seconds);
      if (s.ok()) squid_m.push_back(s.value());
      auto dt = RunPu(*bench.db, query, PuEstimator::kDecisionTree, fraction, &rng,
                      &seconds);
      if (dt.ok()) dt_m.push_back(dt.value());
      auto rf = RunPu(*bench.db, query, PuEstimator::kRandomForest, fraction, &rng,
                      &seconds);
      if (rf.ok()) rf_m.push_back(rf.value());
    }
    Metrics s = MeanMetrics(squid_m), dt = MeanMetrics(dt_m), rf = MeanMetrics(rf_m);
    table.AddRow({TablePrinter::Num(fraction, 2), TablePrinter::Num(s.precision),
                  TablePrinter::Num(s.recall), TablePrinter::Num(s.fscore),
                  TablePrinter::Num(dt.precision), TablePrinter::Num(dt.recall),
                  TablePrinter::Num(dt.fscore), TablePrinter::Num(rf.precision),
                  TablePrinter::Num(rf.recall), TablePrinter::Num(rf.fscore)});
  }
  table.Print();

  Banner("Figure 16(b)", "total time vs Adult scale factor");
  TablePrinter scaling({"scale factor", "rows", "SQuID time (s)", "PU(DT) time (s)"});
  for (size_t factor : {1u, 4u, 7u, 10u}) {
    AdultBench scaled = BuildAdultBench(rows / 2, factor);
    const BenchmarkQuery& query = scaled.queries[0];
    Rng rng(99);
    double squid_seconds = 0, pu_seconds = 0;
    auto s = RunSquidFraction(*scaled.adb, *scaled.db, query, 0.5, &rng,
                              &squid_seconds);
    auto p = RunPu(*scaled.db, query, PuEstimator::kDecisionTree, 0.5, &rng,
                   &pu_seconds);
    (void)s;
    (void)p;
    scaling.AddRow({TablePrinter::Int(factor),
                    TablePrinter::Int(scaled.db->TotalRows()),
                    TablePrinter::Num(squid_seconds, 3),
                    TablePrinter::Num(pu_seconds, 3)});
  }
  scaling.Print();
  return 0;
}
