// Regenerates Fig. 11: execution time of the abduced query vs the actual
// (ground-truth) benchmark query. Expected shape: comparable runtimes, with
// abduced queries often faster because they run against precomputed derived
// relations in the αDB.
//
// With --json=<path> (passed by scripts/run_benches.sh) every per-query row
// — both runtimes, both result cardinalities, and the vectorized executor's
// probe-batch / tuples-materialized counters for the abduced run — lands in
// the bench JSON, where scripts/check_bench_trends.py asserts the
// abduced-vs-actual runtime ratio stays sane (see docs/EXPERIMENTS.md).

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/squid.h"
#include "exec/executor.h"

using namespace squid;
using namespace squid::bench;

namespace {

void RunDataset(const char* label, const Database& db, const AbductionReadyDb& adb,
                const std::vector<BenchmarkQuery>& queries) {
  std::printf("\n-- %s --\n", label);
  TablePrinter table({"query", "actual (ms)", "abduced (ms)", "actual rows",
                      "abduced rows", "probe batches", "tuples"});
  SquidConfig config;
  for (const auto& query : queries) {
    auto truth_rs = GroundTruth(db, query);
    if (!truth_rs.ok()) continue;
    Stopwatch actual_timer;
    auto actual = ExecuteQuery(db, query.query);
    double actual_ms = actual_timer.ElapsedMillis();
    if (!actual.ok()) continue;

    Rng rng(42);
    auto examples = SampleExamples(truth_rs.value(), 10, &rng);
    if (examples.size() < 2) continue;
    Squid squid(&adb, config);
    auto abduced = squid.Discover(examples);
    if (!abduced.ok()) continue;
    Executor abduced_exec(&adb.database());
    Stopwatch abduced_timer;
    auto abduced_rs = abduced_exec.Execute(abduced.value().adb_query);
    double abduced_ms = abduced_timer.ElapsedMillis();
    if (!abduced_rs.ok()) continue;

    table.AddRow({query.id, TablePrinter::Num(actual_ms, 2),
                  TablePrinter::Num(abduced_ms, 2),
                  TablePrinter::Int(actual.value().num_rows()),
                  TablePrinter::Int(abduced_rs.value().num_rows()),
                  TablePrinter::Int(abduced_exec.stats().probe_batches),
                  TablePrinter::Int(abduced_exec.stats().tuples_materialized)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig11_query_runtime");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  Banner("Figure 11", "runtime of abduced vs actual benchmark queries");
  ImdbBench imdb = BuildImdbBench(scale);
  RunDataset("IMDb", *imdb.data.db, *imdb.adb, imdb.queries);
  DblpBench dblp = BuildDblpBench();
  RunDataset("DBLP", *dblp.data.db, *dblp.adb, dblp.queries);
  return 0;
}
