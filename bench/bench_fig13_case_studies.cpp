// Regenerates Fig. 13: the three case studies driven by simulated
// human-made example lists — (a) comedy-portfolio actors, (b) 2000s Sci-Fi
// movies, (c) prolific database researchers. Examples are drawn from the
// biased list; abduced-query outputs and the list are both filtered by the
// popularity mask before scoring (Appendix D). Expected shape: recall rises
// quickly with enough examples; precision stays moderate because the data
// contains matching entities that never made the "list".

#include "bench/bench_util.h"
#include "core/squid.h"
#include "exec/executor.h"

using namespace squid;
using namespace squid::bench;

namespace {

void RunStudy(const AbductionReadyDb& adb, const CaseStudy& cs, size_t runs,
              TablePrinter* table) {
  const std::vector<size_t> sizes = {5, 10, 15, 20, 25, 30};
  SquidConfig config;
  config.normalize_association = cs.use_normalized_association;
  std::unordered_set<std::string> list_set = ToStringSet(cs.list);
  std::unordered_set<std::string> masked_list = ApplyMask(list_set, cs.popularity_mask);

  for (size_t n : sizes) {
    if (n > cs.list.size()) break;
    std::vector<Metrics> samples;
    for (size_t run = 0; run < runs; ++run) {
      Rng rng(7000 + run * 31 + n);
      auto examples = SampleExamples(cs.list, n, &rng);
      Squid squid(&adb, config);
      auto abduced = squid.Discover(examples);
      if (!abduced.ok()) {
        samples.push_back(Metrics{});
        continue;
      }
      auto rs = ExecuteQuery(adb.database(), abduced.value().adb_query);
      if (!rs.ok()) {
        samples.push_back(Metrics{});
        continue;
      }
      auto output = ApplyMask(ToStringSet(rs.value()), cs.popularity_mask);
      samples.push_back(ComputeMetrics(masked_list, output));
    }
    Metrics mean = MeanMetrics(samples);
    table->AddRow({cs.id + " (" + cs.description + ")", TablePrinter::Int(n),
                   TablePrinter::Num(mean.precision), TablePrinter::Num(mean.recall),
                   TablePrinter::Num(mean.fscore)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig13_case_studies");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t runs = static_cast<size_t>(FlagOr(argc, argv, "runs", 5));
  Banner("Figure 13", "case studies with simulated public lists");

  ImdbBench imdb = BuildImdbBench(scale);
  DblpBench dblp = BuildDblpBench();

  TablePrinter table({"case study", "#examples", "precision", "recall", "f-score"});
  auto cs1 = FunnyActorsCaseStudy(*imdb.data.db, imdb.data.manifest);
  SQUID_CHECK(cs1.ok()) << cs1.status().ToString();
  RunStudy(*imdb.adb, cs1.value(), runs, &table);

  auto cs2 = SciFi2000sCaseStudy(*imdb.data.db);
  SQUID_CHECK(cs2.ok()) << cs2.status().ToString();
  RunStudy(*imdb.adb, cs2.value(), runs, &table);

  auto cs3 = ProlificResearchersCaseStudy(*dblp.data.db, dblp.data.manifest);
  SQUID_CHECK(cs3.ok()) << cs3.status().ToString();
  RunStudy(*dblp.adb, cs3.value(), runs, &table);

  table.Print();
  return 0;
}
