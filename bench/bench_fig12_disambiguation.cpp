// Regenerates Fig. 12: effect of entity disambiguation on abduction
// accuracy. The generator plants duplicate person names and movie titles
// (~3-4% of entities), so sampled example strings can be ambiguous; with
// disambiguation off, the first candidate row is taken. Expected shape:
// disambiguation never hurts and can significantly improve f-score.

#include "bench/bench_util.h"
#include "core/squid.h"

using namespace squid;
using namespace squid::bench;

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig12_disambiguation");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t runs = static_cast<size_t>(FlagOr(argc, argv, "runs", 3));
  Banner("Figure 12", "effect of entity disambiguation (IMDb)");

  ImdbBench imdb = BuildImdbBench(scale);
  const std::vector<std::string> query_ids = {"IQ2", "IQ3", "IQ4", "IQ11", "IQ14"};
  const std::vector<size_t> sizes = {5, 10, 15, 20};

  TablePrinter table({"query", "#examples", "f-score w/ DA", "f-score w/o DA"});
  for (const auto& id : query_ids) {
    auto query = FindQuery(imdb.queries, id);
    if (!query.ok()) continue;
    auto truth = GroundTruth(*imdb.data.db, *query.value());
    if (!truth.ok()) continue;
    for (size_t n : sizes) {
      if (n > truth.value().num_rows()) break;
      SquidConfig with_da;
      SquidConfig without_da;
      without_da.enable_disambiguation = false;
      auto a = AccuracyAtSize(*imdb.adb, with_da, truth.value(), n, runs, 900 + n);
      auto b =
          AccuracyAtSize(*imdb.adb, without_da, truth.value(), n, runs, 900 + n);
      if (!a.ok() || !b.ok()) continue;
      table.AddRow({id, TablePrinter::Int(n),
                    TablePrinter::Num(a.value().metrics.fscore),
                    TablePrinter::Num(b.value().metrics.fscore)});
    }
  }
  table.Print();
  return 0;
}
