// Regenerates the parameter-sensitivity studies of Appendix E:
//  Fig. 23: base filter prior ρ ∈ {0.5, 0.1, 0.01}  (IQ2, IQ3, IQ4, IQ11, IQ16)
//  Fig. 24: domain-coverage penalty γ ∈ {0, 2, 5, 10}
//  Fig. 25: association-strength threshold τa ∈ {0, 5}   (IQ5)
//  Fig. 26: skewness threshold τs ∈ {off, 0, 2, 4}       (IQ1)
// Expected shape: moderate ρ and γ are the best average choice; high τa
// helps drop coincidental filters with few examples; moderate τs removes
// unintended derived filters without suppressing intended ones.

#include "bench/bench_util.h"
#include "core/squid.h"

using namespace squid;
using namespace squid::bench;

namespace {

void Sweep(const ImdbBench& bench, const std::vector<std::string>& ids,
           const std::vector<std::pair<std::string, SquidConfig>>& configs,
           size_t runs) {
  TablePrinter table({"query", "#examples", "setting", "f-score"});
  const std::vector<size_t> sizes = {5, 10, 15};
  for (const auto& id : ids) {
    auto query = FindQuery(bench.queries, id);
    if (!query.ok()) continue;
    auto truth = GroundTruth(*bench.data.db, *query.value());
    if (!truth.ok()) continue;
    for (size_t n : sizes) {
      if (n > truth.value().num_rows()) break;
      for (const auto& [name, config] : configs) {
        auto point = AccuracyAtSize(*bench.adb, config, truth.value(), n, runs,
                                    1300 + n);
        if (!point.ok()) continue;
        table.AddRow({id, TablePrinter::Int(n), name,
                      TablePrinter::Num(point.value().metrics.fscore)});
      }
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig23_26_params");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t runs = static_cast<size_t>(FlagOr(argc, argv, "runs", 2));
  ImdbBench bench = BuildImdbBench(scale);

  Banner("Figure 23", "sensitivity to the base filter prior rho");
  {
    std::vector<std::pair<std::string, SquidConfig>> configs;
    for (double rho : {0.5, 0.1, 0.01}) {
      SquidConfig c;
      c.rho = rho;
      configs.emplace_back("rho=" + TablePrinter::Num(rho, 2), c);
    }
    Sweep(bench, {"IQ2", "IQ3", "IQ4", "IQ11", "IQ16"}, configs, runs);
  }

  Banner("Figure 24", "sensitivity to the domain-coverage penalty gamma");
  {
    std::vector<std::pair<std::string, SquidConfig>> configs;
    for (double gamma : {0.0, 2.0, 5.0, 10.0}) {
      SquidConfig c;
      c.gamma = gamma;
      configs.emplace_back("gamma=" + TablePrinter::Num(gamma, 0), c);
    }
    Sweep(bench, {"IQ2", "IQ3", "IQ4", "IQ11", "IQ16"}, configs, runs);
  }

  Banner("Figure 25", "sensitivity to the association-strength threshold tau_a");
  {
    std::vector<std::pair<std::string, SquidConfig>> configs;
    for (double tau_a : {0.0, 5.0}) {
      SquidConfig c;
      c.tau_a = tau_a;
      configs.emplace_back("tau_a=" + TablePrinter::Num(tau_a, 0), c);
    }
    Sweep(bench, {"IQ5"}, configs, runs);
  }

  Banner("Figure 26", "sensitivity to the skewness threshold tau_s");
  {
    std::vector<std::pair<std::string, SquidConfig>> configs;
    {
      SquidConfig off;
      off.use_outlier_impact = false;
      configs.emplace_back("tau_s=off", off);
    }
    for (double tau_s : {0.0, 2.0, 4.0}) {
      SquidConfig c;
      c.tau_s = tau_s;
      configs.emplace_back("tau_s=" + TablePrinter::Num(tau_s, 0), c);
    }
    Sweep(bench, {"IQ1"}, configs, runs);
  }
  return 0;
}
