// Regenerates the dataset-description tables (Figs. 17/18) and the
// benchmark-query tables (Figs. 19/20/22): relation counts, row counts,
// aDB precomputation size/time, and per-query join / selection counts with
// result cardinalities on the generated data.

#include "bench/bench_util.h"

using namespace squid;
using namespace squid::bench;

namespace {

void QueryTable(const char* label, const Database& db,
                const std::vector<BenchmarkQuery>& queries) {
  std::printf("\n-- %s benchmark queries --\n", label);
  TablePrinter table({"id", "J", "S", "#result", "description"});
  for (const auto& q : queries) {
    auto truth = GroundTruth(db, q);
    size_t card = truth.ok() ? truth.value().num_rows() : 0;
    table.AddRow({q.id, TablePrinter::Int(q.num_joins),
                  TablePrinter::Int(q.num_selections), TablePrinter::Int(card),
                  q.description});
  }
  table.Print();
}

void DatasetRow(TablePrinter* table, const char* name, const Database& db,
                const AdbReport& report) {
  table->AddRow({name, TablePrinter::Int(db.num_tables()),
                 TablePrinter::Int(db.TotalRows()),
                 TablePrinter::Int(db.ApproxBytes() / 1024),
                 TablePrinter::Int(report.num_derived_relations),
                 TablePrinter::Int(report.derived_rows),
                 TablePrinter::Int(report.derived_bytes / 1024),
                 TablePrinter::Num(report.build_seconds, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_table_datasets");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  Banner("Figures 17/18", "datasets and aDB precomputation");

  ImdbBench imdb = BuildImdbBench(scale);
  DblpBench dblp = BuildDblpBench();
  AdultBench adult = BuildAdultBench();

  TablePrinter datasets({"dataset", "#relations", "rows", "KB", "#derived",
                         "derived rows", "derived KB", "precompute (s)"});
  DatasetRow(&datasets, "IMDb", *imdb.data.db, imdb.adb->report());
  DatasetRow(&datasets, "DBLP", *dblp.data.db, dblp.adb->report());
  DatasetRow(&datasets, "Adult", *adult.db, adult.adb->report());
  datasets.Print();

  QueryTable("IMDb (Fig. 19)", *imdb.data.db, imdb.queries);
  QueryTable("DBLP (Fig. 20)", *dblp.data.db, dblp.queries);
  QueryTable("Adult (Fig. 22)", *adult.db, adult.queries);
  return 0;
}
