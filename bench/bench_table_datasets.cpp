// Regenerates the dataset-description tables (Figs. 17/18) and the
// benchmark-query tables (Figs. 19/20/22): relation counts, row counts,
// aDB precomputation size/time, and per-query join / selection counts with
// result cardinalities on the generated data. Also reports serial-vs-
// parallel αDB build time per dataset (--threads=, 0 = hardware) for the
// JSON sink / trend checker.

#include "bench/bench_util.h"
#include "common/thread_pool.h"

using namespace squid;
using namespace squid::bench;

namespace {

void QueryTable(const char* label, const Database& db,
                const std::vector<BenchmarkQuery>& queries) {
  std::printf("\n-- %s benchmark queries --\n", label);
  TablePrinter table({"id", "J", "S", "#result", "description"});
  for (const auto& q : queries) {
    auto truth = GroundTruth(db, q);
    size_t card = truth.ok() ? truth.value().num_rows() : 0;
    table.AddRow({q.id, TablePrinter::Int(q.num_joins),
                  TablePrinter::Int(q.num_selections), TablePrinter::Int(card),
                  q.description});
  }
  table.Print();
}

void DatasetRow(TablePrinter* table, const char* name, const Database& db,
                const AdbReport& report) {
  table->AddRow({name, TablePrinter::Int(db.num_tables()),
                 TablePrinter::Int(db.TotalRows()),
                 TablePrinter::Int(db.ApproxBytes() / 1024),
                 TablePrinter::Int(report.num_derived_relations),
                 TablePrinter::Int(report.derived_rows),
                 TablePrinter::Int(report.derived_bytes / 1024),
                 TablePrinter::Num(report.build_seconds, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_table_datasets");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t threads = SizeFlagOr(argc, argv, "threads", 0);
  Banner("Figures 17/18", "datasets and aDB precomputation");

  ImdbBench imdb = BuildImdbBench(scale);
  DblpBench dblp = BuildDblpBench();
  AdultBench adult = BuildAdultBench();

  TablePrinter datasets({"dataset", "#relations", "rows", "KB", "#derived",
                         "derived rows", "derived KB", "precompute (s)"});
  DatasetRow(&datasets, "IMDb", *imdb.data.db, imdb.adb->report());
  DatasetRow(&datasets, "DBLP", *dblp.data.db, dblp.adb->report());
  DatasetRow(&datasets, "Adult", *adult.db, adult.adb->report());
  datasets.Print();

  Banner("aDB build speedup", "serial vs parallel precomputation");
  {
    const size_t resolved = ThreadPool::ResolveThreads(threads);
    TablePrinter speedups(
        {"dataset", "threads", "serial (s)", "parallel (s)", "speedup"});
    auto add_row = [&](const char* name, const Database& db) {
      AdbOptions serial_options;
      serial_options.threads = 1;
      auto serial = AbductionReadyDb::Build(db, serial_options);
      SQUID_CHECK(serial.ok());
      AdbOptions parallel_options;
      parallel_options.threads = threads;
      auto parallel = AbductionReadyDb::Build(db, parallel_options);
      SQUID_CHECK(parallel.ok());
      double serial_s = serial.value()->report().build_seconds;
      double parallel_s = parallel.value()->report().build_seconds;
      speedups.AddRow({name, TablePrinter::Int(resolved),
                       TablePrinter::Num(serial_s, 3),
                       TablePrinter::Num(parallel_s, 3),
                       TablePrinter::Num(
                           parallel_s > 0 ? serial_s / parallel_s : 0, 2)});
    };
    add_row("IMDb", *imdb.data.db);
    add_row("DBLP", *dblp.data.db);
    add_row("Adult", *adult.db);
    speedups.Print();
  }

  QueryTable("IMDb (Fig. 19)", *imdb.data.db, imdb.queries);
  QueryTable("DBLP (Fig. 20)", *dblp.data.db, dblp.queries);
  QueryTable("Adult (Fig. 22)", *adult.db, adult.queries);
  return 0;
}
