// Regenerates Fig. 9: abduction time vs number of examples.
//  (a) IMDb and DBLP, averaged over their benchmark queries.
//  (b) four IMDb size variants (sm-, base, bs-, bd-IMDb).
// Expected shape: time grows ~linearly with |E| (per-example point queries)
// and logarithmically-ish with data size; bd > bs (denser associations mean
// more derived properties per entity).
// Also measures the offline phase (§5): serial vs parallel αDB build time
// over a scale sweep (--scale= base, --maxsweep= largest multiplier,
// --threads= worker count, 0 = hardware). The speedup column feeds the
// bench-trend checker (scripts/check_bench_trends.py) via --json.

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/squid.h"

using namespace squid;
using namespace squid::bench;

namespace {

/// Mean abduction seconds over `queries` at |E| = n (up to `runs` seeds).
double MeanAbductionSeconds(const Database& db, const AbductionReadyDb& adb,
                            const std::vector<BenchmarkQuery>& queries, size_t n,
                            size_t runs) {
  SquidConfig config;
  double total = 0;
  size_t samples = 0;
  for (const auto& query : queries) {
    auto truth = GroundTruth(db, query);
    if (!truth.ok() || truth.value().num_rows() < 2) continue;
    std::unordered_set<std::string> intended = ToStringSet(truth.value());
    for (size_t run = 0; run < runs; ++run) {
      Rng rng(1000 + run);
      auto examples = SampleExamples(truth.value(), n, &rng);
      if (examples.size() < 2) continue;
      auto outcome = RunDiscovery(adb, config, examples, intended);
      if (!outcome.ok()) continue;
      total += outcome.value().abduction_seconds;
      ++samples;
    }
  }
  return samples == 0 ? 0 : total / static_cast<double>(samples);
}

}  // namespace

int main(int argc, char** argv) {
  squid::bench::InitBenchIo(argc, argv, "bench_fig9_scalability");
  double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  size_t runs = static_cast<size_t>(FlagOr(argc, argv, "runs", 2));
  size_t threads = SizeFlagOr(argc, argv, "threads", 0);
  size_t maxsweep = SizeFlagOr(argc, argv, "maxsweep", 4);
  const std::vector<size_t> sizes = {5, 10, 15, 20, 25, 30};

  Banner("aDB build scalability", "serial vs parallel build, scale sweep");
  {
    const size_t resolved = ThreadPool::ResolveThreads(threads);
    TablePrinter table({"dataset", "scale", "rows", "threads", "serial (s)",
                        "parallel (s)", "speedup"});
    for (size_t factor = 1; factor <= maxsweep; factor *= 2) {
      ImdbOptions options;
      options.scale = scale * static_cast<double>(factor);
      auto data = GenerateImdb(options);
      SQUID_CHECK(data.ok());
      AdbOptions serial_options;
      serial_options.threads = 1;
      auto serial = AbductionReadyDb::Build(*data.value().db, serial_options);
      SQUID_CHECK(serial.ok());
      AdbOptions parallel_options;
      parallel_options.threads = threads;
      auto parallel = AbductionReadyDb::Build(*data.value().db, parallel_options);
      SQUID_CHECK(parallel.ok());
      double serial_s = serial.value()->report().build_seconds;
      double parallel_s = parallel.value()->report().build_seconds;
      table.AddRow({"IMDb", TablePrinter::Num(options.scale, 2),
                    TablePrinter::Int(data.value().db->TotalRows()),
                    TablePrinter::Int(resolved), TablePrinter::Num(serial_s, 3),
                    TablePrinter::Num(parallel_s, 3),
                    TablePrinter::Num(parallel_s > 0 ? serial_s / parallel_s : 0, 2)});
    }
    table.Print();
  }

  Banner("Figure 9(a)", "abduction time vs #examples (IMDb, DBLP)");
  {
    ImdbBench imdb = BuildImdbBench(scale);
    DblpBench dblp = BuildDblpBench();
    TablePrinter table({"#examples", "IMDb time (s)", "DBLP time (s)"});
    for (size_t n : sizes) {
      double imdb_s =
          MeanAbductionSeconds(*imdb.data.db, *imdb.adb, imdb.queries, n, runs);
      double dblp_s =
          MeanAbductionSeconds(*dblp.data.db, *dblp.adb, dblp.queries, n, runs);
      table.AddRow({TablePrinter::Int(n), TablePrinter::Num(imdb_s, 4),
                    TablePrinter::Num(dblp_s, 4)});
    }
    table.Print();
  }

  Banner("Figure 9(b)", "abduction time vs dataset size (IMDb variants)");
  {
    // Variants at a smaller base scale so bd-IMDb's denser graph stays
    // bench-friendly.
    double vscale = scale * 0.6;
    struct Variant {
      const char* name;
      ImdbOptions options;
    };
    ImdbOptions sm, base, bs, bd;
    sm.scale = vscale * 0.4;
    base.scale = vscale;
    bs.scale = vscale;
    bs.duplicate_entities = true;
    bd.scale = vscale;
    bd.duplicate_entities = true;
    bd.dense_duplicates = true;
    Variant variants[] = {{"sm-IMDb", sm}, {"IMDb", base}, {"bs-IMDb", bs},
                          {"bd-IMDb", bd}};

    TablePrinter table({"dataset", "rows", "aDB build (s)", "|E|=5 (s)",
                        "|E|=15 (s)", "|E|=30 (s)"});
    for (const Variant& v : variants) {
      auto data = GenerateImdb(v.options);
      SQUID_CHECK(data.ok());
      auto adb = AbductionReadyDb::Build(*data.value().db);
      SQUID_CHECK(adb.ok());
      auto queries = ImdbBenchmarkQueries(data.value().manifest);
      std::vector<std::string> row = {
          v.name, TablePrinter::Int(data.value().db->TotalRows()),
          TablePrinter::Num(adb.value()->report().build_seconds, 2)};
      for (size_t n : {5u, 15u, 30u}) {
        row.push_back(TablePrinter::Num(
            MeanAbductionSeconds(*data.value().db, *adb.value(), queries, n, 1),
            4));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
