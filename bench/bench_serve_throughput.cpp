// Serve-mode throughput/latency: closed-loop sweep over worker threads ×
// context-cache budget × workload mix against one SquidService per cell.
//
// Workload mixes:
//  - repeat-heavy: clients cycle over a handful of example sets (session
//    traffic with hot entities) — the cache's best case;
//  - unique-heavy: clients walk a long list of distinct example sets (cold
//    long-tail traffic) — the cache's worst case.
//
// Each cell runs the same request list twice on one service: the first pass
// is the cold measurement (cache filling), the second the warm measurement
// (cache serving). Closed loop: one client thread per worker thread, each
// waiting for its answer before sending the next request.
//
// scripts/check_bench_trends.py asserts (per mix): warm-cache throughput is
// not below cold on the repeat-heavy mix, and multi-thread serve is not
// slower than single-thread (within tolerance; 1-core CI leaves both ~1x).
//
// Flags: --scale=0.25 --requests=24 --json=<path>

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "serve/squid_service.h"

namespace squid {
namespace bench {
namespace {

/// Example sets for one mix: repeat-heavy cycles `distinct` sets, so every
/// request after the first cycle re-touches cached entities.
std::vector<std::vector<std::string>> BuildExampleSets(const ImdbBench& bench,
                                                       size_t distinct) {
  std::vector<std::vector<std::string>> sets;
  sets.push_back(
      {bench.data.manifest.costar_a, bench.data.manifest.costar_b});
  const char* ids[] = {"IQ1", "IQ6", "IQ13", "IQ15"};
  uint64_t seed = 101;
  while (sets.size() < distinct) {
    bool grew = false;
    for (const char* id : ids) {
      if (sets.size() >= distinct) break;
      auto query = FindQuery(bench.queries, id);
      if (!query.ok()) continue;
      auto truth = GroundTruth(*bench.data.db, *query.value());
      if (!truth.ok()) continue;
      Rng rng(seed++);
      auto examples = SampleExamples(truth.value(), 5, &rng);
      if (examples.size() >= 2) {
        sets.push_back(std::move(examples));
        grew = true;
      }
    }
    if (!grew) break;  // ground truths exhausted; cycle what we have
  }
  return sets;
}

struct PassResult {
  double seconds = 0;
  size_t answered = 0;
};

/// Closed loop: `clients` threads each drain their slice of the request
/// list, one in-flight request per client.
PassResult RunPass(SquidService* service,
                   const std::vector<const std::vector<std::string>*>& requests,
                   size_t clients) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> answered{0};
  Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        auto result = service->DiscoverSync(*requests[i]);
        if (result.ok()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  PassResult out;
  out.seconds = timer.ElapsedSeconds();
  out.answered = answered.load();
  return out;
}

}  // namespace

void Run(int argc, char** argv) {
  InitBenchIo(argc, argv, "bench_serve_throughput");
  const double scale = FlagOr(argc, argv, "scale", kImdbBenchScale);
  const size_t requests = SizeFlagOr(argc, argv, "requests", 24);

  ImdbBench bench = BuildImdbBench(scale);
  Banner("Serve throughput", "closed-loop Discover sweep (threads x cache x mix)");
  std::printf("IMDb scale %.2f, %zu requests per pass, %zu descriptors\n\n",
              scale, requests, bench.adb->report().num_descriptors);

  struct Mix {
    const char* name;
    size_t distinct;
  };
  const Mix mixes[] = {{"repeat", 3}, {"unique", 64}};
  const size_t thread_counts[] = {1, 2, 4};
  const size_t cache_budgets[] = {0, 8u << 20};

  TablePrinter table({"mix", "threads", "cache (KiB)", "requests", "cold (s)",
                      "cold req/s", "warm (s)", "warm req/s", "mean warm ms",
                      "srv p50 ms", "srv p99 ms", "warm hits", "hits",
                      "misses", "evictions"});
  for (const Mix& mix : mixes) {
    auto sets = BuildExampleSets(bench, mix.distinct);
    std::vector<const std::vector<std::string>*> request_list;
    request_list.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
      request_list.push_back(&sets[i % sets.size()]);
    }
    for (size_t threads : thread_counts) {
      for (size_t cache_bytes : cache_budgets) {
        // Private registry per cell: the server-side latency percentiles
        // below must describe this service alone, not every service this
        // process ever ran.
        obs::MetricsRegistry registry;
        ServeOptions options;
        options.threads = threads;
        options.cache_bytes = cache_bytes;
        options.queue_capacity = 2 * threads;
        options.metrics = &registry;
        SquidService service(bench.adb.get(), options);
        PassResult cold = RunPass(&service, request_list, threads);
        ServeStats after_cold = service.stats();
        PassResult warm = RunPass(&service, request_list, threads);
        SQUID_CHECK(cold.answered == requests && warm.answered == requests)
            << "serve bench requests failed (" << cold.answered << "/"
            << warm.answered << " of " << requests << ")";
        ServeStats stats = service.stats();
        // Hits scored by the warm pass alone — the cold pass already hits
        // on repeat-heavy mixes, so the cumulative counter can't tell
        // whether the warm pass was actually served from cache.
        const uint64_t warm_hits = stats.hits - after_cold.hits;
        auto rate = [&](const PassResult& p) {
          return p.seconds > 0 ? static_cast<double>(requests) / p.seconds : 0.0;
        };
        table.AddRow({mix.name, TablePrinter::Int(threads),
                      TablePrinter::Int(cache_bytes >> 10),
                      TablePrinter::Int(requests),
                      TablePrinter::Num(cold.seconds, 4),
                      TablePrinter::Num(rate(cold), 1),
                      TablePrinter::Num(warm.seconds, 4),
                      TablePrinter::Num(rate(warm), 1),
                      TablePrinter::Num(warm.seconds / requests * 1e3, 3),
                      TablePrinter::Num(
                          static_cast<double>(
                              stats.request_ns.ValueAtQuantile(0.50)) /
                              1e6,
                          3),
                      TablePrinter::Num(
                          static_cast<double>(
                              stats.request_ns.ValueAtQuantile(0.99)) /
                              1e6,
                          3),
                      TablePrinter::Int(warm_hits),
                      TablePrinter::Int(stats.hits),
                      TablePrinter::Int(stats.misses),
                      TablePrinter::Int(stats.evictions)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nClosed loop, one client per worker thread; warm pass repeats the\n"
      "cold pass's requests on the same service (cache already filled).\n");
}

}  // namespace bench
}  // namespace squid

int main(int argc, char** argv) {
  squid::bench::Run(argc, argv);
  return 0;
}
