// Snapshot save/load vs full αDB rebuild, at the Fig. 9 build-scalability
// scales (base scale x 1, 2, ... up to --maxsweep). The point of a snapshot
// is to replace the offline rebuild on serve-host boot, so the headline
// trend — asserted by scripts/check_bench_trends.py — is that loading the
// largest benched snapshot is at least ~5x faster than rebuilding the αDB
// from the base tables. Scratch snapshots go under ${TMPDIR:-/tmp} and are
// removed afterwards.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/bench_util.h"
#include "storage/snapshot.h"

using namespace squid;
using namespace squid::bench;

namespace {

std::string ScratchPath() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  return dir + "/squid_bench_snapshot.sqsnap";
}

size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

/// One dataset x scale measurement: rebuild wall-clock vs save/load, plus a
/// cheap structural spot check that the load actually materialized the αDB.
void MeasureRow(TablePrinter* table, const char* dataset, double scale,
                const Database& db) {
  Stopwatch rebuild_watch;
  auto adb = AbductionReadyDb::Build(db);
  SQUID_CHECK(adb.ok()) << adb.status().ToString();
  double rebuild_s = rebuild_watch.ElapsedSeconds();

  const std::string path = ScratchPath();
  Stopwatch save_watch;
  Status save = adb.value()->SaveSnapshot(path);
  SQUID_CHECK(save.ok()) << save.ToString();
  double save_s = save_watch.ElapsedSeconds();

  Stopwatch load_watch;
  auto loaded = AbductionReadyDb::LoadSnapshot(path);
  SQUID_CHECK(loaded.ok()) << loaded.status().ToString();
  double load_s = load_watch.ElapsedSeconds();
  SQUID_CHECK(loaded.value()->database().TableNames().size() ==
              adb.value()->database().TableNames().size());

  size_t bytes = FileBytes(path);
  std::remove(path.c_str());
  table->AddRow({dataset, TablePrinter::Num(scale, 2),
                 TablePrinter::Int(db.TotalRows()),
                 TablePrinter::Num(rebuild_s, 3), TablePrinter::Num(save_s, 3),
                 TablePrinter::Num(load_s, 3),
                 TablePrinter::Num(load_s > 0 ? rebuild_s / load_s : 0, 1),
                 TablePrinter::Num(bytes / (1024.0 * 1024.0), 2)});
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchIo(argc, argv, "bench_snapshot");
  double imdb_scale = FlagOr(argc, argv, "scale", kImdbBenchScale * 0.5);
  double dblp_scale = FlagOr(argc, argv, "dblpscale", kDblpBenchScale * 0.5);
  size_t maxsweep = SizeFlagOr(argc, argv, "maxsweep", 2);

  Banner("Snapshot boot", "save/load vs full aDB rebuild (scale sweep)");
  TablePrinter table({"dataset", "scale", "rows", "rebuild (s)", "save (s)",
                      "load (s)", "speedup", "file (MiB)"});
  for (size_t factor = 1; factor <= maxsweep; factor *= 2) {
    ImdbOptions options;
    options.scale = imdb_scale * static_cast<double>(factor);
    auto data = GenerateImdb(options);
    SQUID_CHECK(data.ok()) << data.status().ToString();
    MeasureRow(&table, "IMDb", options.scale, *data.value().db);
  }
  for (size_t factor = 1; factor <= maxsweep; factor *= 2) {
    DblpOptions options;
    options.scale = dblp_scale * static_cast<double>(factor);
    auto data = GenerateDblp(options);
    SQUID_CHECK(data.ok()) << data.status().ToString();
    MeasureRow(&table, "DBLP", options.scale, *data.value().db);
  }
  table.Print();
  return 0;
}
